"""Unit tests for the congruence closure engine."""

import pytest

from repro.logic.terms import App, IntConst, mk
from repro.prover.egraph import EGraph, FALSE, TRUE

a, b, c = App("a"), App("b"), App("c")


def f(*args):
    return App("f", tuple(args))


def g(*args):
    return App("g", tuple(args))


class TestBasics:
    def test_reflexivity(self):
        e = EGraph()
        assert e.are_equal(f(a), f(a))

    def test_asserted_equality(self):
        e = EGraph()
        assert e.assert_eq(a, b)
        assert e.are_equal(a, b)

    def test_transitivity(self):
        e = EGraph()
        e.assert_eq(a, b)
        e.assert_eq(b, c)
        assert e.are_equal(a, c)

    def test_congruence(self):
        e = EGraph()
        e.assert_eq(a, b)
        assert e.are_equal(f(a), f(b))

    def test_congruence_after_the_fact(self):
        e = EGraph()
        e.add_term(f(a))
        e.add_term(f(b))
        e.assert_eq(a, b)
        assert e.are_equal(f(a), f(b))

    def test_nested_congruence(self):
        e = EGraph()
        e.assert_eq(a, b)
        assert e.are_equal(g(f(a), a), g(f(b), b))

    def test_disequality_conflict(self):
        e = EGraph()
        e.assert_diseq(a, b)
        assert not e.assert_eq(a, b)
        assert e.conflict is not None

    def test_congruence_triggers_diseq_conflict(self):
        e = EGraph()
        e.assert_diseq(f(a), f(b))
        assert not e.assert_eq(a, b)

    def test_not_equal_by_default(self):
        e = EGraph()
        e.add_term(a)
        e.add_term(b)
        assert not e.are_equal(a, b)
        assert not e.are_diseq(a, b)


class TestNumerals:
    def test_distinct_numerals(self):
        e = EGraph()
        e.add_term(IntConst(1))
        e.add_term(IntConst(2))
        assert e.are_diseq(IntConst(1), IntConst(2))

    def test_merging_numerals_conflicts(self):
        e = EGraph()
        assert not e.assert_eq(IntConst(1), IntConst(2))

    def test_indirect_numeral_conflict(self):
        e = EGraph()
        e.assert_eq(a, IntConst(1))
        e.assert_eq(b, IntConst(2))
        assert not e.assert_eq(a, b)

    def test_arith_folding(self):
        e = EGraph()
        e.add_term(mk("@plus", IntConst(2), IntConst(3)))
        assert e.are_equal(mk("@plus", IntConst(2), IntConst(3)), IntConst(5))

    def test_arith_folding_after_merge(self):
        e = EGraph()
        e.add_term(mk("@plus", a, IntConst(3)))
        e.assert_eq(a, IntConst(2))
        assert e.are_equal(mk("@plus", a, IntConst(3)), IntConst(5))

    def test_div_by_zero_stays_uninterpreted(self):
        e = EGraph()
        e.add_term(mk("@div", IntConst(1), IntConst(0)))
        assert not e.are_equal(mk("@div", IntConst(1), IntConst(0)), IntConst(0))


class TestConstructors:
    def test_distinct_heads_conflict(self):
        e = EGraph(constructors={"skip", "assgn"})
        assert not e.assert_eq(App("skip"), mk("assgn", a, b))

    def test_distinct_heads_implicit_diseq(self):
        e = EGraph(constructors={"skip", "assgn"})
        e.add_term(App("skip"))
        e.add_term(mk("assgn", a, b))
        assert e.are_diseq(App("skip"), mk("assgn", a, b))

    def test_injectivity(self):
        e = EGraph(constructors={"assgn"})
        e.assert_eq(mk("assgn", a, b), mk("assgn", c, b))
        assert e.are_equal(a, c)

    def test_injectivity_cascades_conflict(self):
        e = EGraph(constructors={"assgn"})
        e.assert_diseq(a, c)
        assert not e.assert_eq(mk("assgn", a, b), mk("assgn", c, b))

    def test_constructor_vs_numeral(self):
        e = EGraph(constructors={"skip"})
        assert not e.assert_eq(App("skip"), IntConst(0))

    def test_non_constructor_merge_ok(self):
        e = EGraph(constructors={"skip"})
        assert e.assert_eq(f(a), g(a))  # f, g uninterpreted


class TestBooleans:
    def test_true_false_distinct(self):
        e = EGraph()
        assert e.are_diseq(TRUE, FALSE)

    def test_pred_conflict(self):
        e = EGraph()
        p = mk("p", a)
        e.assert_eq(p, TRUE)
        assert not e.assert_eq(p, FALSE)


class TestBacktracking:
    def test_pop_undoes_merge(self):
        e = EGraph()
        e.add_term(a)
        e.add_term(b)
        e.push()
        e.assert_eq(a, b)
        assert e.are_equal(a, b)
        e.pop()
        assert not e.are_equal(a, b)

    def test_pop_undoes_new_terms(self):
        e = EGraph()
        e.push()
        e.add_term(f(a))
        e.pop()
        assert f(a) not in e.term_to_node

    def test_pop_undoes_diseq(self):
        e = EGraph()
        e.add_term(a)
        e.add_term(b)
        e.push()
        e.assert_diseq(a, b)
        assert e.are_diseq(a, b)
        e.pop()
        assert not e.are_diseq(a, b)
        assert e.assert_eq(a, b)

    def test_pop_restores_congruence_state(self):
        e = EGraph()
        e.add_term(f(a))
        e.add_term(f(b))
        e.push()
        e.assert_eq(a, b)
        assert e.are_equal(f(a), f(b))
        e.pop()
        assert not e.are_equal(f(a), f(b))
        # Re-asserting works after the pop.
        e.assert_eq(a, b)
        assert e.are_equal(f(a), f(b))

    def test_nested_scopes(self):
        e = EGraph()
        e.push()
        e.assert_eq(a, b)
        e.push()
        e.assert_eq(b, c)
        assert e.are_equal(a, c)
        e.pop()
        assert e.are_equal(a, b)
        assert not e.are_equal(a, c)
        e.pop()
        assert not e.are_equal(a, b)

    def test_pop_after_conflict(self):
        e = EGraph()
        e.assert_diseq(a, b)
        e.push()
        assert not e.assert_eq(a, b)  # conflict, partial state
        e.pop()
        assert not e.are_equal(a, b)
        assert e.conflict is None

    def test_diseq_migration_undone(self):
        e = EGraph()
        e.add_term(a)
        e.add_term(b)
        e.add_term(c)
        e.assert_diseq(a, c)
        e.push()
        e.assert_eq(a, b)  # c's disequality migrates to the merged class
        assert e.are_diseq(b, c)
        e.pop()
        assert not e.are_diseq(b, c)
        assert e.are_diseq(a, c)
