"""Structural tests for the obligation generator: the F/B goals have the
shapes section 4 prescribes."""

import pytest

from repro.logic.formulas import And, Eq, Implies, Not, Or, Pred
from repro.logic.terms import App, mk
from repro.cobalt.labels import standard_registry
from repro.verify import encode as E
from repro.verify.obligations import (
    ETA,
    ETA1,
    ETA_NEW,
    ETA_OLD,
    PI,
    PIT,
    Obligation,
    ObligationBuilder,
    seeds_for,
    step_premises,
)
from repro.opts import const_fold, const_prop, dae, taintedness_analysis


@pytest.fixture()
def builder():
    return ObligationBuilder(standard_registry(), {})


def _flat(formula):
    return str(formula)


class TestForwardObligations:
    def test_three_obligations_in_order(self, builder):
        obs = builder.forward_obligations(const_prop.pattern)
        assert [ob.name for ob in obs] == ["F1", "F2", "F3"]

    def test_all_are_implications(self, builder):
        for ob in builder.forward_obligations(const_prop.pattern):
            assert isinstance(ob.goal, Implies)

    def test_f1_premise_contains_step_and_guard(self, builder):
        f1 = builder.forward_obligations(const_prop.pattern)[0]
        text = _flat(f1.goal)
        assert "stepOK(ETA, PI)" in text
        assert "stmtKind(stmtAt(PI, sIndex(ETA)))" in text
        assert "pid_Y" in text and "pcv_C" in text

    def test_f1_conclusion_is_witness_at_post_state(self, builder):
        f1 = builder.forward_obligations(const_prop.pattern)[0]
        conclusion = f1.goal.conc
        assert "ETA1" in _flat(conclusion)

    def test_f3_mentions_both_programs(self, builder):
        f3 = builder.forward_obligations(const_prop.pattern)[2]
        text = _flat(f3.goal)
        assert "stmtAt(PIt" in text and "stmtAt(PI," in text
        assert "stepOK(ETA, PIt)" in text  # progress conclusion

    def test_split_terms(self, builder):
        f1, f2, f3 = builder.forward_obligations(const_prop.pattern)
        scrutinee = E.stmt_at(PI, E.s_index(ETA))
        assert f1.split_term == scrutinee
        assert f2.split_term == scrutinee
        assert f3.split_term is None  # the rewrite fixes the statement shape

    def test_sort_premises_included(self, builder):
        f1 = builder.forward_obligations(const_prop.pattern)[0]
        assert "isIntVal(pcv_C)" in _flat(f1.goal)

    def test_return_exclusion(self, builder):
        f2 = builder.forward_obligations(const_prop.pattern)[1]
        assert "K_RET" in _flat(f2.goal.hyp)

    def test_computed_premises_for_folding(self, builder):
        f3 = builder.forward_obligations(const_fold.pattern)[2]
        text = _flat(f3.goal)
        assert "applyOp(pop_OP, pcv_C1, pcv_C2)" in text
        assert "opArgsOK" in text


class TestBackwardObligations:
    def test_three_obligations(self, builder):
        obs = builder.backward_obligations(dae.pattern)
        assert [ob.name for ob in obs] == ["B1", "B2", "B3"]

    def test_b1_steps_both_programs_from_same_state(self, builder):
        b1 = builder.backward_obligations(dae.pattern)[0]
        text = _flat(b1.goal.hyp)
        assert "stepOK(ETA, PI)" in text and "stepOK(ETA, PIt)" in text
        assert "ETAold" in text and "ETAnew" in text

    def test_b2_concludes_transformed_progress(self, builder):
        b2 = builder.backward_obligations(dae.pattern)[1]
        assert "stepOK(ETAnew, PIt)" in _flat(b2.goal.conc)

    def test_b2_same_statement_premise(self, builder):
        b2 = builder.backward_obligations(dae.pattern)[1]
        text = _flat(b2.goal.hyp)
        assert "stmtAt(PI, sIndex(ETAold)) = stmtAt(PIt, sIndex(ETAnew))" in text

    def test_b3_merges_traces(self, builder):
        b3 = builder.backward_obligations(dae.pattern)[2]
        text = _flat(b3.goal.conc)
        # eta_new steps in pi' to exactly eta_old's successor.
        assert "sIndex(ETAold1) = stepIndex(ETAnew, PIt)" in text

    def test_b2_b3_split_over_old_statement(self, builder):
        _, b2, b3 = builder.backward_obligations(dae.pattern)
        scrutinee = E.stmt_at(PI, E.s_index(ETA_OLD))
        assert b2.split_term == scrutinee
        assert b3.split_term == scrutinee


class TestAnalysisObligations:
    def test_two_obligations_only(self, builder):
        obs = builder.analysis_obligations(taintedness_analysis)
        assert [ob.name for ob in obs] == ["F1", "F2"]

    def test_witness_is_npt(self, builder):
        f1 = builder.analysis_obligations(taintedness_analysis)[0]
        assert "NPT(" in _flat(f1.goal.conc)


class TestSeeds:
    def test_statement_kind_exhaustiveness(self):
        s = App("S0")
        seeds = seeds_for(s)
        head = _flat(seeds[0])
        for tag in ("K_SKIP", "K_DECL", "K_ASSGN", "K_NEW", "K_CALL", "K_IF", "K_RET"):
            assert tag in head

    def test_projection_seeds_are_guarded(self):
        s = App("S0")
        seeds = seeds_for(s)
        for seed in seeds[1:]:
            assert isinstance(seed, Implies)

    def test_step_premises_cover_all_components(self):
        premises = step_premises(ETA, ETA1, PI)
        text = " / ".join(map(_flat, premises))
        for component in ("stepIndex", "stepEnv", "stepStore", "stepStack", "stepMem"):
            assert component in text
