"""Persistent incremental solver sessions (docs/BACKENDS.md).

The contract under test:

* :func:`session_argv` maps known solvers onto their incremental flag and
  leaves unknown commands (scripted fakes, custom wrappers) untouched;
* :class:`SolverSession` speaks the push/pop protocol — the shared
  prelude is asserted exactly once per solver *process*, every query runs
  inside its own ``(push 1)``/``(pop 1)`` scope, and ``max_queries``
  recycles the process (replaying the prelude) on schedule;
* session anomalies map onto the spawn-per-script verdict semantics:
  a crash respawns-and-replays (then degrades one query to the
  :class:`SolverRunner` fallback), a wedge kills the process and reports
  ``timeout``, a decided race cancels promptly;
* the session is *invisible* in results: backend identity, canonical
  reports, and proof-cache keys are byte-identical to spawn-per-script
  mode, and process-pool workers each own (and tear down) their session.

Everything runs with scripted fake solvers speaking the incremental
stdin protocol, so no SMT solver needs to be installed.
"""

import sys
import time

import pytest

from repro.cobalt.labels import standard_registry
from repro.prover import ProverConfig
from repro.prover.backends import (
    BackendSpec,
    SessionBroken,
    SmtLibBackend,
    SolverSession,
    session_argv,
)
from repro.verify.obligations import ObligationBuilder
from repro.opts import const_fold, const_prop

FAST = ProverConfig(timeout_s=60.0)

#: A scripted solver speaking both process disciplines: given a script
#: path it answers like a spawn-per-script solver; on stdin it speaks the
#: incremental session subset (echo fences replayed, one verdict per
#: ``(check-sat)``).  ``%(hook)s`` runs per stdin line, ``%(verdict)s``
#: answers ``(check-sat)``, ``%(file_verdict)s`` answers script mode.
_DUAL = """\
def handle(line):
%(hook)s
    if line.startswith("(check-sat"):
%(verdict)s
    elif line.startswith("(echo"):
        print(line.split('"')[1], flush=True)
    elif line.startswith("(exit"):
        raise SystemExit(0)

if len(sys.argv) > 1:
%(file_verdict)s
else:
    for raw in sys.stdin:
        handle(raw.strip())
"""


def _indent(body: str, by: str) -> str:
    return "\n".join(by + line for line in body.splitlines())


@pytest.fixture()
def fake_session_solver(tmp_path):
    """Factory for dual-mode scripted solvers: returns an argv tuple."""

    counter = [0]

    def make(
        verdict: str = "print('unsat', flush=True)",
        *,
        hook: str = "pass",
        file_verdict: str = "print('unsat')",
    ):
        counter[0] += 1
        script = tmp_path / f"session{counter[0]}.py"
        script.write_text(
            "import sys, os, time\n"
            + _DUAL
            % {
                "hook": _indent(hook, "    "),
                "verdict": _indent(verdict, "        "),
                "file_verdict": _indent(file_verdict, "    "),
            }
        )
        return (sys.executable, str(script))

    return make


def _obligations(pattern):
    return ObligationBuilder(standard_registry()).forward_obligations(pattern)


def _backend(cmd, *, timeout_s=30.0, max_session_queries=0):
    spec = BackendSpec(
        name="smtlib",
        solver_cmd=cmd,
        solver_timeout_s=timeout_s,
        session=True,
        max_session_queries=max_session_queries,
    )
    return SmtLibBackend(spec, FAST)


# ---------------------------------------------------------------------------
# Incremental argv mapping
# ---------------------------------------------------------------------------


class TestSessionArgv:
    def test_z3_gets_stdin_flag(self):
        assert session_argv(("/usr/bin/z3",)) == ("/usr/bin/z3", "-in")

    def test_cvc5_gets_incremental_flag(self):
        assert session_argv(("cvc5", "--lang=smt2")) == (
            "cvc5",
            "--lang=smt2",
            "--incremental",
        )

    def test_bundled_shim_gets_session_flag(self):
        cmd = (sys.executable, "-m", "repro.prover.backends.z3shim")
        assert session_argv(cmd) == cmd + ("--session",)

    def test_unknown_command_unchanged(self):
        cmd = (sys.executable, "/tmp/fake-solver.py")
        assert session_argv(cmd) == cmd


# ---------------------------------------------------------------------------
# The session protocol, driven directly
# ---------------------------------------------------------------------------


class TestSolverSession:
    def _logged_session(self, fake_session_solver, tmp_path, **kwargs):
        log = tmp_path / "wire.log"
        cmd = fake_session_solver(
            hook=f"open({str(log)!r}, 'a').write(line + chr(10))"
        )
        session = SolverSession(cmd, "(set-logic UF)\n(assert true)\n", **kwargs)
        return session, log

    def test_push_pop_discipline(self, fake_session_solver, tmp_path):
        session, log = self._logged_session(fake_session_solver, tmp_path)
        try:
            session.start()
            for _ in range(3):
                outcome = session.check(["(assert true)"])
                assert outcome.status == "unsat"
        finally:
            session.close()
        lines = log.read_text().splitlines()
        # the prelude went down the pipe exactly once…
        assert lines.count("(set-logic UF)") == 1
        # …and every query ran inside its own balanced scope
        assert lines.count("(push 1)") == 3
        assert lines.count("(pop 1)") == 3
        first_check = lines.index("(check-sat)")
        assert lines.index("(push 1)") < first_check
        assert session.spawns == 1
        assert session.queries == 3

    def test_max_queries_recycles_the_process(
        self, fake_session_solver, tmp_path
    ):
        session, log = self._logged_session(
            fake_session_solver, tmp_path, max_queries=2
        )
        try:
            session.start()
            for _ in range(5):
                assert session.check(["(assert true)"]).status == "unsat"
        finally:
            session.close()
        # queries 1-2 on process 1, 3-4 on process 2, 5 on process 3 —
        # each fresh process replays the prelude.
        assert session.spawns == 3
        assert log.read_text().splitlines().count("(set-logic UF)") == 3

    def test_sat_collects_the_model(self, fake_session_solver):
        cmd = fake_session_solver(
            "print('sat', flush=True)",
            hook=(
                "if line.startswith('(get-model'):\n"
                "    print('(model (x 1))', flush=True)"
            ),
        )
        session = SolverSession(cmd, "(set-logic UF)\n")
        try:
            session.start()
            outcome = session.check(["(assert true)"])
        finally:
            session.close()
        assert outcome.status == "sat"
        assert "(model (x 1))" in outcome.model

    def test_crash_mid_query_is_session_broken(self, fake_session_solver):
        cmd = fake_session_solver("os._exit(3)")
        session = SolverSession(cmd, "(set-logic UF)\n")
        try:
            session.start()
            with pytest.raises(SessionBroken) as exc:
                session.check(["(assert true)"])
            assert exc.value.kind == "crash"
        finally:
            session.close()

    def test_wedge_kills_the_process(self, fake_session_solver):
        cmd = fake_session_solver("time.sleep(60)")
        session = SolverSession(cmd, "(set-logic UF)\n", timeout_s=0.3)
        try:
            session.start()
            start = time.monotonic()
            with pytest.raises(SessionBroken) as exc:
                session.check(["(assert true)"])
            assert exc.value.kind == "wedge"
            assert time.monotonic() - start < 10.0
            assert not session.alive, "a wedged solver must be killed"
        finally:
            session.close()

    def test_garbage_answer_is_protocol_broken(self, fake_session_solver):
        cmd = fake_session_solver("print('certainly!', flush=True)")
        session = SolverSession(cmd, "(set-logic UF)\n")
        try:
            session.start()
            with pytest.raises(SessionBroken) as exc:
                session.check(["(assert true)"])
            assert exc.value.kind == "protocol"
        finally:
            session.close()


# ---------------------------------------------------------------------------
# The backend: one warm process, recovery, fallback
# ---------------------------------------------------------------------------


class TestSessionBackend:
    def test_one_spawn_discharges_every_case(self, fake_session_solver):
        backend = _backend(fake_session_solver())
        try:
            obligations = _obligations(const_fold.pattern)
            for ob in obligations:
                result = backend.discharge("constFold", ob)
                assert result.proved, result.context
        finally:
            backend.close()
        assert backend.process_spawns == 1, (
            "a healthy session discharges the whole obligation set "
            "with a single solver process"
        )
        assert backend.session_queries > len(obligations)
        assert backend.fallback_queries == 0
        assert backend.runner.spawns == 0

    def test_crash_respawns_and_replays(
        self, fake_session_solver, tmp_path
    ):
        # The solver dies on its 3rd query, exactly once; the backend must
        # respawn, replay the prelude, and retry that query in-session.
        marker = tmp_path / "crashed-once"
        cmd = fake_session_solver(
            hook=(
                f"m = {str(marker)!r}\n"
                "if line.startswith('(check-sat'):\n"
                "    n = int(open(m).read()) if os.path.exists(m) else 0\n"
                "    open(m, 'w').write(str(n + 1))\n"
                "    if n + 1 == 3:\n"
                "        os._exit(1)"
            )
        )
        backend = _backend(cmd)
        try:
            for ob in _obligations(const_fold.pattern):
                result = backend.discharge("constFold", ob)
                assert result.proved, result.context
        finally:
            backend.close()
        assert backend.session_spawns == 2, "one crash, one respawn"
        assert backend.fallback_queries == 0
        assert backend.runner.spawns == 0

    def test_persistent_garbage_degrades_to_spawn_fallback(
        self, fake_session_solver
    ):
        # Session answers are never a verdict token; after the
        # respawn-and-replay attempt the query must degrade to the
        # spawn-per-script runner (whose script-mode answer is unsat).
        backend = _backend(
            fake_session_solver("print('certainly!', flush=True)")
        )
        try:
            ob = _obligations(const_fold.pattern)[0]
            result = backend.discharge("constFold", ob)
            assert result.proved, result.context
        finally:
            backend.close()
        assert backend.fallback_queries >= 1
        assert backend.runner.spawns >= 1

    def test_wedge_reports_timeout_like_spawn_mode(self, fake_session_solver):
        cmd = fake_session_solver("time.sleep(60)")
        backend = _backend(cmd, timeout_s=0.3)
        try:
            ob = _obligations(const_fold.pattern)[0]
            proved, conclusive, context = backend.run_cases(ob)
        finally:
            backend.close()
        assert not proved and not conclusive
        assert any("timeout" in line for line in context)

    def test_identity_hides_the_session(self, fake_session_solver):
        # Proof-cache keys must not depend on the process discipline.
        cmd = fake_session_solver()
        spawn = SmtLibBackend(
            BackendSpec(name="smtlib", solver_cmd=cmd), FAST
        )
        session = _backend(cmd)
        try:
            assert spawn.identity() == session.identity()
        finally:
            spawn.close()
            session.close()

    def test_close_is_idempotent(self, fake_session_solver):
        backend = _backend(fake_session_solver())
        ob = _obligations(const_fold.pattern)[0]
        assert backend.discharge("constFold", ob).proved
        backend.close()
        backend.close()
        assert backend._session is None
        # a post-close discharge transparently re-opens a session
        assert backend.discharge("constFold", ob).proved
        assert backend.process_spawns == 2
        backend.close()


# ---------------------------------------------------------------------------
# Integration: reports, workers, teardown
# ---------------------------------------------------------------------------


class TestSessionIntegration:
    def _options(self, cmd, **kwargs):
        from repro.api import ProverOptions, VerifyOptions

        return VerifyOptions(
            backend="smtlib",
            solver_cmd=cmd,
            prover=ProverOptions(timeout_s=60.0),
            **kwargs,
        )

    def test_session_report_byte_identical_to_spawn(self, fake_session_solver):
        from repro.verify import SoundnessChecker

        cmd = fake_session_solver()
        reports = {}
        for mode in (True, False):
            checker = SoundnessChecker(
                options=self._options(cmd, solver_session=mode)
            )
            reports[mode] = checker.check_optimization(const_prop).canonical()
            checker.backend.close()
        assert reports[True] == reports[False]

    @pytest.mark.slow
    def test_session_suite_byte_identical_to_spawn(self, fake_session_solver):
        from repro.api import verify_suite

        cmd = fake_session_solver()
        canonicals = {}
        for mode in (True, False):
            report = verify_suite(
                self._options(cmd, solver_session=mode),
                analyses=[],
                optimizations=[const_fold, const_prop],
            )
            canonicals[mode] = report.canonical()
        assert canonicals[True] == canonicals[False]

    def test_parallel_session_matches_serial(self, fake_session_solver):
        from repro.verify import SoundnessChecker

        cmd = fake_session_solver()
        serial = SoundnessChecker(
            options=self._options(cmd, solver_session=True)
        )
        pooled = SoundnessChecker(
            options=self._options(cmd, solver_session=True, jobs=2)
        )
        left = serial.check_optimization(const_prop).canonical()
        right = pooled.check_optimization(const_prop).canonical()
        serial.backend.close()
        assert left == right

    def test_worker_owns_and_tears_down_its_session(self, fake_session_solver):
        # Drive the pool-worker lifecycle in-process: init builds a
        # session-mode backend, a discharge warms the session, close
        # releases it (this is what the atexit hook runs on pool teardown).
        import repro.verify.parallel as parallel

        spec = BackendSpec(
            name="smtlib", solver_cmd=fake_session_solver(), session=True
        )
        parallel._worker_init(FAST, spec)
        backend = parallel._WORKER_BACKEND
        try:
            assert isinstance(backend, SmtLibBackend)
            ob = _obligations(const_fold.pattern)[0]
            index, result = parallel._worker_discharge(
                (0, "constFold", ob, FAST, spec)
            )
            assert index == 0 and result.proved
            assert backend._session is not None and backend._session.alive
        finally:
            parallel._worker_close()
        assert parallel._WORKER_BACKEND is None
        assert backend._session is None, "teardown must close the session"
