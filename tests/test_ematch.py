"""Unit tests for E-matching and automatic trigger selection."""

import pytest

from repro.logic.terms import App, IntConst, LVar, mk
from repro.prover.egraph import EGraph
from repro.prover.ematch import binding_to_terms, ematch, select_triggers

a, b, c = App("a"), App("b"), App("c")
x, y = LVar("x"), LVar("y")


class TestBasicMatching:
    def test_single_match(self):
        e = EGraph()
        e.add_term(mk("f", a))
        bindings = ematch(e, (mk("f", x),))
        assert len(bindings) == 1
        assert binding_to_terms(e, bindings[0]) == {"x": a}

    def test_multiple_matches(self):
        e = EGraph()
        e.add_term(mk("f", a))
        e.add_term(mk("f", b))
        bindings = ematch(e, (mk("f", x),))
        terms = {binding_to_terms(e, t)["x"] for t in bindings}
        assert terms == {a, b}

    def test_no_match(self):
        e = EGraph()
        e.add_term(mk("g", a))
        assert ematch(e, (mk("f", x),)) == []

    def test_nested_pattern(self):
        e = EGraph()
        e.add_term(mk("f", mk("g", a)))
        bindings = ematch(e, (mk("f", mk("g", x)),))
        assert binding_to_terms(e, bindings[0]) == {"x": a}

    def test_nested_pattern_rejects_wrong_inner_head(self):
        e = EGraph()
        e.add_term(mk("f", mk("h", a)))
        assert ematch(e, (mk("f", mk("g", x)),)) == []

    def test_nonlinear_pattern(self):
        e = EGraph()
        e.add_term(mk("f", a, a))
        e.add_term(mk("f", a, b))
        bindings = ematch(e, (mk("f", x, x),))
        assert len(bindings) == 1

    def test_int_const_pattern(self):
        e = EGraph()
        e.add_term(mk("f", IntConst(3)))
        e.add_term(mk("f", IntConst(4)))
        bindings = ematch(e, (mk("f", IntConst(3), ),))
        assert len(bindings) == 1


class TestMatchingModuloCongruence:
    def test_match_through_merged_class(self):
        e = EGraph()
        e.add_term(mk("f", a))
        e.assert_eq(a, b)
        # Pattern f(g(x)) should match because a's class contains g(c)
        e.assert_eq(b, mk("g", c))
        bindings = ematch(e, (mk("f", mk("g", x)),))
        assert len(bindings) == 1
        assert binding_to_terms(e, bindings[0])["x"] == c

    def test_nonlinear_respects_classes(self):
        e = EGraph()
        e.add_term(mk("f", a, b))
        assert ematch(e, (mk("f", x, x),)) == []
        e.assert_eq(a, b)
        assert len(ematch(e, (mk("f", x, x),))) == 1

    def test_bindings_deduplicated_by_class(self):
        e = EGraph()
        e.add_term(mk("f", a))
        e.add_term(mk("f", b))
        e.assert_eq(a, b)
        bindings = ematch(e, (mk("f", x),))
        assert len(bindings) == 1  # a and b are one class now


class TestMultiPatterns:
    def test_joint_binding(self):
        e = EGraph()
        e.add_term(mk("f", a))
        e.add_term(mk("g", a))
        e.add_term(mk("g", b))
        bindings = ematch(e, (mk("f", x), mk("g", x)))
        assert len(bindings) == 1
        assert binding_to_terms(e, bindings[0])["x"] == a

    def test_independent_variables(self):
        e = EGraph()
        e.add_term(mk("f", a))
        e.add_term(mk("g", b))
        bindings = ematch(e, (mk("f", x), mk("g", y)))
        assert len(bindings) == 1
        terms = binding_to_terms(e, bindings[0])
        assert terms == {"x": a, "y": b}

    def test_cross_product(self):
        e = EGraph()
        for t in (a, b):
            e.add_term(mk("f", t))
            e.add_term(mk("g", t))
        bindings = ematch(e, (mk("f", x), mk("g", y)))
        assert len(bindings) == 4


class TestRepresentatives:
    def test_small_representative_chosen(self):
        e = EGraph()
        big = mk("f", mk("g", mk("h", a)))
        e.assert_eq(big, b)
        bindings = ematch(e, (mk("k", x),))
        assert bindings == []
        e.add_term(mk("k", big))
        bindings = ematch(e, (mk("k", x),))
        assert binding_to_terms(e, bindings[0])["x"] == b  # smaller member


class TestTriggerSelection:
    def test_single_covering_term(self):
        triggers = select_triggers([mk("f", x, y)], ["x", "y"])
        assert triggers == ((mk("f", x, y),),)

    def test_prefers_smallest_cover(self):
        triggers = select_triggers([mk("f", mk("g", x), y), mk("h", x, y)], ["x", "y"])
        assert triggers == ((mk("h", x, y),),)

    def test_multipattern_when_no_single_cover(self):
        triggers = select_triggers([mk("f", x), mk("g", y)], ["x", "y"])
        (multi,) = triggers
        assert set(multi) == {mk("f", x), mk("g", y)}

    def test_uncoverable_returns_empty(self):
        triggers = select_triggers([mk("f", x)], ["x", "z"])
        assert triggers == ()

    def test_bare_variable_not_a_trigger(self):
        e = EGraph()
        with pytest.raises(ValueError):
            ematch(e, (x,))
