"""Interpreter edge cases: frame deallocation, dangling pointers, heap
sharing across calls, location comparisons, and the intraprocedural step."""

import pytest

from repro.il import Interpreter, parse_program, run_program
from repro.il.interp import ExecError, Finished, Next, OutOfFuel, Stuck
from repro.il.state import Loc


class TestFrameDeallocation:
    def test_dangling_pointer_read_is_stuck(self):
        # leak returns the address of its own local; dereferencing it after
        # the frame is gone is a run-time error.
        program = parse_program(
            """
            main(n) {
              decl p;
              decl x;
              p := leak(n);
              x := *p;
              return x;
            }
            leak(m) {
              decl t;
              decl q;
              t := m;
              q := &t;
              return q;
            }
            """
        )
        with pytest.raises(ExecError):
            run_program(program, 5)

    def test_heap_cell_survives_return(self):
        program = parse_program(
            """
            main(n) {
              decl p;
              decl x;
              p := make(n);
              x := *p;
              return x;
            }
            make(m) {
              decl q;
              q := new;
              *q := m;
              return q;
            }
            """
        )
        assert run_program(program, 11) == 11

    def test_callee_writes_through_caller_pointer(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl p;
              decl r;
              x := 1;
              p := &x;
              r := poke(p);
              return x;
            }
            poke(q) {
              decl z;
              *q := 99;
              z := 0;
              return z;
            }
            """
        )
        assert run_program(program, 0) == 99

    def test_recursion_frames_are_independent(self):
        # Each activation's local t gets its own cell.
        program = parse_program(
            """
            main(n) {
              decl r;
              r := fact(n);
              return r;
            }
            fact(m) {
              decl r;
              decl t;
              r := 1;
              if m goto 4 else 7;
              t := m - 1;
              r := fact(t);
              r := r * m;
              return r;
            }
            """
        )
        assert run_program(program, 5) == 120


class TestLocationValues:
    def test_pointer_equality(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl p;
              decl q;
              decl r;
              p := &x;
              q := &x;
              r := p == q;
              return r;
            }
            """
        )
        assert run_program(program, 0) == 1

    def test_distinct_pointers_unequal(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl y;
              decl p;
              decl q;
              decl r;
              p := &x;
              q := &y;
              r := p == q;
              return r;
            }
            """
        )
        assert run_program(program, 0) == 0

    def test_pointer_arithmetic_is_stuck(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl p;
              decl r;
              p := &x;
              r := p + 1;
              return r;
            }
            """
        )
        with pytest.raises(ExecError):
            run_program(program, 0)

    def test_returning_pointer_value_from_main(self):
        program = parse_program(
            """
            main(n) {
              decl p;
              p := new;
              return p;
            }
            """
        )
        assert isinstance(run_program(program, 0), Loc)


class TestIntraStep:
    def test_intra_step_of_noncall_equals_step(self):
        program = parse_program("main(n) { decl x; x := n; return x; }")
        interp = Interpreter(program)
        state = interp.initial_state(3)
        assert interp.intra_step(state) == interp.step(state)

    def test_failing_call_has_no_intra_transition(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := crash(n);
              return x;
            }
            crash(m) {
              decl y;
              y := 1 / m;
              return y;
            }
            """
        )
        interp = Interpreter(program)
        state = interp.initial_state(0)
        state = interp.step(state).state  # decl x
        result = interp.intra_step(state)
        assert isinstance(result, Stuck)

    def test_diverging_call_has_no_intra_transition(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := spin(n);
              return x;
            }
            spin(m) {
              if 1 goto 0 else 1;
              return m;
            }
            """
        )
        interp = Interpreter(program)
        state = interp.step(interp.initial_state(0)).state
        result = interp.intra_step(state, fuel=500)
        assert isinstance(result, Stuck)

    def test_intra_step_skips_nested_calls(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := outer(n);
              return x;
            }
            outer(a) {
              decl r;
              r := inner(a);
              r := r + 1;
              return r;
            }
            inner(b) {
              decl s;
              s := b * 2;
              return s;
            }
            """
        )
        interp = Interpreter(program)
        state = interp.step(interp.initial_state(10)).state
        result = interp.intra_step(state)
        assert isinstance(result, Next)
        assert result.state.read_var("x") == 21
        assert result.state.proc_name == "main"


class TestTermination:
    def test_infinite_loop_out_of_fuel(self):
        program = parse_program("main(n) { if 1 goto 0 else 1; return n; }")
        with pytest.raises(OutOfFuel):
            run_program(program, 0, fuel=200)

    def test_finished_result_has_value(self):
        program = parse_program("main(n) { return n; }")
        interp = Interpreter(program)
        result = interp.step(interp.initial_state(13))
        assert isinstance(result, Finished)
        assert result.value == 13
