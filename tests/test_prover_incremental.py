"""Cross-checks between the incremental and reference prover modes.

The incremental mode (mod-times E-matching + watched ground clauses) is an
optimization of the reference mode (full re-match, full rescan), not a
different prover: both must return byte-identical results — same status,
same counterexample context — and, round by round, admit the *same set* of
ground instances.  These tests pin that contract:

* obligation-level cross-checks over the shipped optimization suite
  (fast subset always; the full suite under ``-m slow``);
* round-by-round instance-set equivalence via
  ``ProverConfig.record_round_instances``, over real obligations and 50
  seeded-random goals;
* a timeout regression: ``prove`` must return within a small factor of
  ``timeout_s`` even while an explosive E-matching round is in flight.
"""

import random
import time

import pytest

from repro.logic.formulas import (
    And,
    Eq,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
)
from repro.logic.terms import App, IntConst, LVar
from repro.opts import ALL_OPTIMIZATIONS, taintedness_analysis
from repro.prover import Prover, ProverConfig
from repro.verify import SoundnessChecker
from repro.verify.checker import discharge_obligation
from repro.verify.encode import CONSTRUCTORS, all_axioms
from repro.verify.obligations import ObligationBuilder
from repro.cobalt.labels import standard_registry

MODES = ("reference", "incremental")

#: Cheap rows for the always-on cross-check; the slow test covers the rest.
FAST_OPTS = [
    o
    for o in ALL_OPTIMIZATIONS
    if o.name
    in {"constProp", "copyProp", "constFold", "branchFold", "selfAssignRemoval"}
]


def _report_fingerprint(report):
    """Everything a mode could influence: status tree + failure contexts."""
    ctxs = tuple(
        (r.obligation, r.proved, tuple(r.context)) for r in report.results
    )
    for dep in report.dependencies:
        ctxs += tuple(
            (r.obligation, r.proved, tuple(r.context)) for r in dep.results
        )
    return report.canonical(), ctxs


def _check_modes(opt):
    fps = {}
    for mode in MODES:
        checker = SoundnessChecker(
            config=ProverConfig(timeout_s=120.0, mode=mode)
        )
        fps[mode] = _report_fingerprint(checker.check_optimization(opt))
    assert fps["reference"] == fps["incremental"], (
        f"{opt.name}: modes disagree"
    )


@pytest.mark.parametrize("opt", FAST_OPTS, ids=lambda o: o.name)
def test_modes_identical_fast(opt):
    _check_modes(opt)


@pytest.mark.slow
@pytest.mark.parametrize("opt", ALL_OPTIMIZATIONS, ids=lambda o: o.name)
def test_modes_identical_full_suite(opt):
    _check_modes(opt)


@pytest.mark.slow
def test_modes_identical_analysis():
    fps = {}
    for mode in MODES:
        checker = SoundnessChecker(
            config=ProverConfig(timeout_s=120.0, mode=mode)
        )
        fps[mode] = _report_fingerprint(
            checker.check_analysis(taintedness_analysis)
        )
    assert fps["reference"] == fps["incremental"]


# ---------------------------------------------------------------------------
# Round-by-round instance-set equivalence.
#
# The mod-times completeness argument says: every instance the reference
# mode's full re-enumeration discovers in round r is either newly matchable
# (and thus found by the restricted passes) or was deferred by the relevance
# guard in an earlier round (and thus carried over).  Recording the admitted
# instances per round makes that argument executable.
# ---------------------------------------------------------------------------


def _rounds_for_obligations(opt_names):
    """Round-by-round admissions for every obligation of the named opts."""
    by_name = {o.name: o for o in ALL_OPTIMIZATIONS}
    builder = ObligationBuilder(standard_registry(), {})
    traces = {mode: [] for mode in MODES}
    for mode in MODES:
        cfg = ProverConfig(
            timeout_s=120.0, mode=mode, record_round_instances=True
        )
        prover = Prover(all_axioms(), constructors=CONSTRUCTORS, config=cfg)
        for name in opt_names:
            pattern = by_name[name].pattern
            from repro.cobalt.dsl import BackwardPattern

            if isinstance(pattern, BackwardPattern):
                obligations = builder.backward_obligations(pattern)
            else:
                obligations = builder.forward_obligations(pattern)
            for ob in obligations:
                result = discharge_obligation(prover, name, ob)
                traces[mode].append((name, ob.name, result.proved))
    return traces


def test_round_by_round_obligations():
    """Both modes discharge the fast rows' obligations identically.

    ``record_round_instances`` feeds ``Result.round_instances``; the
    per-case comparison happens inside ``_prove_both`` below for goals, and
    at the obligation level here (identical verdict sequence implies the
    search — driven entirely by the admitted instances — never diverged).
    """
    names = [o.name for o in FAST_OPTS]
    traces = _rounds_for_obligations(names)
    assert traces["reference"] == traces["incremental"]


def _prove_both(goal, axioms=(), cfg_kw=None):
    """Prove ``goal`` in both modes; rounds and results must coincide."""
    kw = dict(timeout_s=20.0, record_round_instances=True)
    kw.update(cfg_kw or {})
    out = {}
    for mode in MODES:
        prover = Prover(
            list(axioms), config=ProverConfig(mode=mode, **kw)
        )
        result = prover.prove(goal)
        rounds = [sorted(r) for r in (result.round_instances or [])]
        out[mode] = (result.status, tuple(result.context), rounds)
    assert out["reference"] == out["incremental"], "modes diverged"
    return out["reference"]


def test_round_by_round_kind_split_obligation():
    """A quantified goal whose proof needs instantiation rounds."""
    x, y = LVar("x"), LVar("y")
    f = lambda t: App("f", (t,))
    axioms = [
        Forall(("x",), Implies(Pred("P", (x,)), Pred("P", (f(x),)))),
        Forall(
            ("x", "y"),
            Implies(
                And((Pred("P", (x,)), Eq(f(x), f(y)))), Pred("Q", (y,))
            ),
        ),
    ]
    goal = Implies(Pred("P", (App("a"),)), Pred("Q", (f(App("a")),)))
    status, _, rounds = _prove_both(goal, axioms)
    assert status.name == "PROVED"
    assert rounds, "instantiation rounds were recorded"


class _GoalGen:
    """Seeded random ground goals over a small equational vocabulary."""

    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.consts = [App(n) for n in "abcde"]

    def term(self, depth=2):
        r = self.rng
        if depth == 0 or r.random() < 0.4:
            if r.random() < 0.8:
                return r.choice(self.consts)
            return IntConst(r.randrange(4))
        fn = r.choice(["f", "g", "pair"])
        if fn == "pair":
            return App("pair", (self.term(depth - 1), self.term(depth - 1)))
        return App(fn, (self.term(depth - 1),))

    def atom(self):
        if self.rng.random() < 0.6:
            return Eq(self.term(), self.term())
        return Pred("P", (self.term(),))

    def formula(self, depth=3):
        r = self.rng.random()
        if depth == 0 or r < 0.35:
            f = self.atom()
            return Not(f) if self.rng.random() < 0.3 else f
        if r < 0.55:
            return And((self.formula(depth - 1), self.formula(depth - 1)))
        if r < 0.75:
            return Or((self.formula(depth - 1), self.formula(depth - 1)))
        if r < 0.9:
            return Implies(self.formula(depth - 1), self.formula(depth - 1))
        return Not(self.formula(depth - 1))


#: Quantified background theory so random goals exercise E-matching, the
#: relevance guard is irrelevant here (no kind literals), and both the
#: watched and reference scans see merges, disequalities, and backtracking.
def _random_theory():
    x, y = LVar("x"), LVar("y")
    f = lambda t: App("f", (t,))
    g = lambda t: App("g", (t,))
    return [
        Forall(("x",), Eq(f(g(x)), g(f(x)))),
        Forall(("x",), Implies(Pred("P", (x,)), Pred("P", (f(x),)))),
        Forall(
            ("x", "y"),
            Implies(And((Eq(x, y), Pred("P", (x,)))), Pred("P", (y,))),
        ),
    ]


def test_round_by_round_random_goals():
    """50 seeded-random goals: same verdict, context, and rounds per mode."""
    theory = _random_theory()
    proved = 0
    for seed in range(50):
        gen = _GoalGen(seed)
        goal = gen.formula()
        if seed % 2:
            # Valid by construction (modus ponens over random formulas),
            # so the corpus mixes refutations with saturations.
            other = gen.formula()
            goal = Implies(And((goal, Implies(goal, other))), other)
        status, _, _ = _prove_both(
            goal,
            theory,
            cfg_kw=dict(max_rounds=4, max_instances=500, timeout_s=10.0),
        )
        proved += status.name == "PROVED"
    # Sanity: the corpus is a genuine mix, not all-trivial one way.
    assert 0 < proved < 50


# ---------------------------------------------------------------------------
# Timeout enforcement inside _instantiate / the scan loops.
# ---------------------------------------------------------------------------


def _explosive_setup():
    """~200 ground facts and a quadratic multi-pattern: one E-matching
    round enumerates ~40k bindings, so a tiny timeout necessarily fires
    *inside* ``_instantiate`` (or the scan that follows), not between
    rounds."""
    x, y = LVar("x"), LVar("y")
    facts = [Pred("P", (App(f"c{i}"),)) for i in range(200)]
    axiom = Forall(
        ("x", "y"),
        Implies(
            And((Pred("P", (x,)), Pred("P", (y,)))),
            Pred("Q", (App("pair", (x, y)),)),
        ),
        triggers=((App("P", (x,)), App("P", (y,))),),
    )
    goal = Implies(And(tuple(facts)), Pred("R", (App("z"),)))
    return [axiom], goal


@pytest.mark.parametrize("mode", MODES)
def test_timeout_enforced_mid_instantiation(mode):
    axioms, goal = _explosive_setup()
    cfg = ProverConfig(
        timeout_s=0.2, max_rounds=50, max_instances=500_000, mode=mode
    )
    prover = Prover(axioms, config=cfg)
    start = time.monotonic()
    result = prover.prove(goal)
    elapsed = time.monotonic() - start
    assert not result.proved
    # Generous factor for loaded CI machines; without the in-loop deadline
    # checks this blows past 10s (one full quadratic round).
    assert elapsed < 5.0, (
        f"prove() took {elapsed:.2f}s against timeout_s=0.2"
    )
    assert any("resource limit" in line for line in result.context)
