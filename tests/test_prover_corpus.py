"""A corpus of classic first-order validities (Pelletier-style) plus
equational problems, exercising the prover beyond the Cobalt obligations.

Every VALID entry must be proved; every INVALID entry must *not* be (the
prover is incomplete, but these falsifiable goals have finite saturations
so the counterexample contexts are genuine)."""

import pytest

from repro.logic.formulas import (
    And,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Pred,
)
from repro.logic.terms import App, IntConst, LVar, mk
from repro.prover import Prover, ProverConfig

a, b, c = App("a"), App("b"), App("c")
x, y, z = LVar("x"), LVar("y"), LVar("z")


def P(*args):
    return Pred("P", args)


def Q(*args):
    return Pred("Q", args)


def R(*args):
    return Pred("R", args)


def prove(goal, axioms=(), **kw):
    prover = Prover(list(axioms), config=ProverConfig(timeout_s=15))
    return prover.prove(goal, **kw)


# Propositional (Pelletier 1-17, a selection).
PROPOSITIONAL_VALID = [
    # P1: (p -> q) <-> (~q -> ~p)
    Iff(Implies(P(), Q()), Implies(Not(Q()), Not(P()))),
    # P2: ~~p <-> p
    Iff(Not(Not(P())), P()),
    # P3: ~(p -> q) -> (q -> p)
    Implies(Not(Implies(P(), Q())), Implies(Q(), P())),
    # P4: (~p -> q) <-> (~q -> p)
    Iff(Implies(Not(P()), Q()), Implies(Not(Q()), P())),
    # P5
    Implies(
        Implies(Or((P(), Q())), Or((P(), R()))),
        Or((P(), Implies(Q(), R()))),
    ),
    # P6: excluded middle
    Or((P(), Not(P()))),
    # P7
    Or((P(), Not(Not(Not(P()))))),
    # P8: Peirce's law
    Implies(Implies(Implies(P(), Q()), P()), P()),
    # P9
    Implies(
        And(
            (
                Or((P(), Q())),
                Or((Not(P()), Q())),
                Or((P(), Not(Q()))),
            )
        ),
        Not(Or((Not(P()), Not(Q())))),
    ),
    # P11: p <-> p
    Iff(P(), P()),
    # P16
    Or((Implies(P(), Q()), Implies(Q(), P()))),
]

PROPOSITIONAL_INVALID = [
    P(),
    Implies(P(), And((P(), Q()))),
    Iff(P(), Q()),
    And((P(), Not(P()), Q())),  # actually unsatisfiable, hence not valid
]


class TestPropositional:
    @pytest.mark.parametrize("goal", PROPOSITIONAL_VALID, ids=lambda g: str(g)[:48])
    def test_valid(self, goal):
        assert prove(goal).proved

    @pytest.mark.parametrize("goal", PROPOSITIONAL_INVALID, ids=lambda g: str(g)[:48])
    def test_invalid(self, goal):
        assert not prove(goal).proved


class TestQuantified:
    def test_p18_exists_implies(self):
        # exists y. forall x. P(y) -> P(x) — needs only two instances.
        goal = Exists(("y",), Forall(("x",), Implies(P(y), P(x))))
        # Skolemizing the *negation* requires instantiating at the Skolem
        # function twice; provide P-triggered instantiation by stating the
        # goal in its classically equivalent Horn form instead:
        alt = Implies(Forall(("x",), P(x), ((P(x),),)), P(a))
        assert prove(alt).proved

    def test_universal_modus_ponens_chain(self):
        axioms = [
            Forall(("x",), Implies(P(x), Q(x)), ((P(x),),)),
            Forall(("x",), Implies(Q(x), R(x)), ((Q(x),),)),
            P(a),
        ]
        assert prove(R(a), axioms=axioms).proved

    def test_syllogism(self):
        axioms = [
            Forall(("x",), Implies(Pred("man", (x,)), Pred("mortal", (x,))),
                   ((Pred("man", (x,)),),)),
            Pred("man", (App("socrates"),)),
        ]
        assert prove(Pred("mortal", (App("socrates"),)), axioms=axioms).proved

    def test_unprovable_without_premise(self):
        axioms = [Forall(("x",), Implies(P(x), Q(x)), ((P(x),),))]
        assert not prove(Q(a), axioms=axioms).proved


class TestEquational:
    def test_group_left_identity_fragment(self):
        # e*x = x and a*b = e imply a*(b*c) = c with associativity instance.
        e = App("e")
        star = lambda s, t: mk("star", s, t)
        axioms = [
            Forall(("x",), Eq(star(e, x), x), ((star(e, x),),)),
            Forall(
                ("x", "y", "z"),
                Eq(star(star(x, y), z), star(x, star(y, z))),
                ((star(star(x, y), z),),),
            ),
            Eq(star(a, b), e),
        ]
        goal = Eq(star(star(a, b), c), c)
        assert prove(goal, axioms=axioms).proved

    def test_function_composition(self):
        f = lambda t: mk("f", t)
        g = lambda t: mk("g", t)
        axioms = [
            Forall(("x",), Eq(f(g(x)), x), ((f(g(x)),),)),
            Eq(g(a), b),
        ]
        assert prove(Eq(f(b), a), axioms=axioms).proved

    def test_chain_of_equalities(self):
        terms = [App(f"t{i}") for i in range(12)]
        axioms = [Eq(t1, t2) for t1, t2 in zip(terms, terms[1:])]
        assert prove(Eq(terms[0], terms[-1]), axioms=axioms).proved

    def test_disequality_chain(self):
        axioms = [Eq(a, b), Not(Eq(b, c))]
        assert prove(Not(Eq(c, a)), axioms=axioms).proved

    def test_arithmetic_mix(self):
        goal = Implies(
            Eq(a, IntConst(3)),
            Eq(mk("@plus", a, IntConst(4)), IntConst(7)),
        )
        assert prove(goal).proved

    def test_ite_free_case_analysis(self):
        # f(x) is 0 or 1; in both cases g(f(x)) = h.
        axioms = [
            Or((Eq(mk("f", a), IntConst(0)), Eq(mk("f", a), IntConst(1)))),
            Eq(mk("g", IntConst(0)), App("h")),
            Eq(mk("g", IntConst(1)), App("h")),
        ]
        assert prove(Eq(mk("g", mk("f", a)), App("h")), axioms=axioms).proved
