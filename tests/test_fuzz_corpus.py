"""Replay the fuzzing regression corpus (``corpus/`` at the repo root).

Every failure a fuzz campaign ever found lives here, shrunk and
content-addressed; replaying it on every test run pins the fix forever:

* ``unsound-rule-*`` — the checker must still reject the rule AND the
  stored program pair must still miscompile on the stored argument;
* ``axiom-misproof-*`` — the axiom oracle must report zero misproofs;
* ``metamorphic-*`` — all prover legs must agree on the stored rule.
"""

import pytest

from repro.fuzz import DEFAULT_CORPUS_DIR, load_entries, replay_entry

ENTRIES = load_entries(DEFAULT_CORPUS_DIR)


def test_corpus_exists_and_is_wellformed():
    assert ENTRIES, f"no corpus entries found in {DEFAULT_CORPUS_DIR}"
    for path, entry in ENTRIES:
        assert path.name == entry.filename, (
            f"{path.name} does not match its content digest "
            f"(expected {entry.filename})"
        )
        assert entry.kind in ("unsound-rule", "axiom-misproof", "metamorphic")


@pytest.mark.parametrize(
    "path,entry", ENTRIES, ids=[p.name for p, _ in ENTRIES]
)
def test_replay(path, entry):
    ok, detail = replay_entry(entry)
    assert ok, f"{path.name}: {detail}"
