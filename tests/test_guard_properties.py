"""Property-based tests tying the guard language's two evaluation modes
together: everything generate() returns satisfies check(), and every
fully-enumerated satisfying substitution is generated."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.il.ast import Const, Var
from repro.il.cfg import Cfg
from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.cobalt.guards import (
    GAnd,
    GEq,
    GLabel,
    GNot,
    GOr,
    GTrue,
    check,
    generate,
    guard_leaves,
)
from repro.cobalt.labels import Labeling, NodeCtx, standard_registry
from repro.cobalt.patterns import ConstPat, VarPat, parse_pattern_stmt

REGISTRY = standard_registry()

GUARDS = [
    GLabel("stmt", (parse_pattern_stmt("Y := C"),)),
    GLabel("stmt", (parse_pattern_stmt("X := Y"),)),
    GLabel("stmt", (parse_pattern_stmt("X := E"),)),
    GAnd(
        (
            GLabel("stmt", (parse_pattern_stmt("Y := C"),)),
            GNot(GLabel("mayDef", (VarPat("Y"),))),
        )
    ),
    GOr(
        (
            GLabel("stmt", (parse_pattern_stmt("decl X"),)),
            GLabel("stmt", (parse_pattern_stmt("X := new"),)),
        )
    ),
    GAnd(
        (
            GLabel("stmt", (parse_pattern_stmt("return ..."),)),
            GNot(GLabel("mayUse", (VarPat("X"),))),
        )
    ),
    GAnd((GTrue(), GNot(GLabel("usesVar", (VarPat("X"),))))),
    GAnd(
        (
            GLabel("stmt", (parse_pattern_stmt("X := Y"),)),
            GNot(GEq(VarPat("X"), VarPat("Y"))),
        )
    ),
]


@st.composite
def node_contexts(draw):
    seed = draw(st.integers(0, 400))
    config = GeneratorConfig(
        num_stmts=draw(st.integers(2, 10)),
        num_vars=draw(st.integers(1, 3)),
        allow_pointers=draw(st.booleans()),
    )
    proc = ProgramGenerator(config, seed=seed).gen_proc()
    index = draw(st.integers(0, len(proc.stmts) - 1))
    return NodeCtx(proc, Cfg.build(proc), index, REGISTRY, Labeling())


class TestGenerateCheckAgreement:
    @given(node_contexts(), st.sampled_from(GUARDS))
    @settings(max_examples=150, deadline=None)
    def test_generated_bindings_check(self, ctx, guard):
        for theta in generate(guard, {}, ctx):
            assert check(guard, theta, ctx)

    @given(node_contexts(), st.sampled_from(GUARDS))
    @settings(max_examples=60, deadline=None)
    def test_generation_is_complete(self, ctx, guard):
        """Brute-force all total substitutions over the finite domains; each
        one satisfying the guard must be produced by generate()."""
        leaves = sorted(guard_leaves(guard), key=lambda l: l.name)
        domains = []
        for leaf in leaves:
            if isinstance(leaf, VarPat):
                domains.append([Var(v) for v in sorted(ctx.proc.mentioned_vars())])
            elif isinstance(leaf, ConstPat):
                domains.append([Const(c) for c in sorted(ctx.proc.constants())])
            else:
                return  # expression domains are handled by the engine itself
        generated = {
            tuple(sorted((k, repr(v)) for k, v in theta.items()))
            for theta in generate(guard, {}, ctx)
        }
        for combo in itertools.product(*domains):
            theta = {leaf.name: value for leaf, value in zip(leaves, combo)}
            if check(guard, theta, ctx):
                key = tuple(sorted((k, repr(v)) for k, v in theta.items()))
                assert key in generated, f"missing {theta} at node {ctx.index}"
