"""Experiment E6: the execution engine's fixed-point dataflow computes
exactly Definition 1's path-quantified guard meaning.

The oracle enumerates CFG paths literally; on acyclic CFGs (which the
random generator produces) it is exact, so engine facts must coincide."""

import pytest

from repro.il.cfg import Cfg
from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.il.parser import parse_program
from repro.cobalt.engine import CobaltEngine
from repro.cobalt.labels import standard_registry
from repro.cobalt.semantics import guard_meaning_by_paths, is_acyclic
from repro.opts import const_prop, copy_prop, cse, dae


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


@pytest.fixture(scope="module")
def engine(registry):
    return CobaltEngine(registry)


def compare(pattern, proc, registry, engine):
    cfg = Cfg.build(proc)
    assert is_acyclic(cfg)
    oracle = guard_meaning_by_paths(
        pattern.psi1, pattern.psi2, pattern.direction, proc, registry
    )
    computed = engine.guard_facts(pattern.psi1, pattern.psi2, pattern.direction, proc)
    assert computed == oracle, (
        "engine/oracle mismatch:\n"
        + "\n".join(
            f"node {i}: engine={sorted(map(str, computed[i]))} oracle={sorted(map(str, oracle[i]))}"
            for i in range(len(proc.stmts))
            if computed[i] != oracle[i]
        )
    )


HAND_PROGRAMS = [
    """
    main(n) {
      decl a;
      decl c;
      a := 2;
      c := a;
      return c;
    }
    """,
    """
    main(n) {
      decl a;
      decl c;
      if n goto 3 else 5;
      a := 2;
      if 1 goto 6 else 6;
      a := 3;
      c := a;
      return c;
    }
    """,
    """
    main(n) {
      decl x;
      decl y;
      x := 1;
      if n goto 4 else 6;
      y := x;
      if 1 goto 7 else 7;
      y := 1;
      return y;
    }
    """,
]


class TestHandPrograms:
    @pytest.mark.parametrize("text", HAND_PROGRAMS)
    @pytest.mark.parametrize("opt", [const_prop, copy_prop, dae], ids=lambda o: o.name)
    def test_engine_matches_definition(self, text, opt, registry, engine):
        proc = parse_program(text).proc("main")
        compare(opt.pattern, proc, registry, engine)


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("opt", [const_prop, dae, cse], ids=lambda o: o.name)
    def test_engine_matches_definition(self, seed, opt, registry, engine):
        generator = ProgramGenerator(GeneratorConfig(num_stmts=8, num_vars=3), seed=seed)
        proc = generator.gen_proc()
        compare(opt.pattern, proc, registry, engine)


class TestVacuousPaths:
    def test_unreachable_node_gets_universe_forward(self, registry, engine):
        # Node 3 is unreachable from entry: every theta is (vacuously)
        # valid there under Definition 1's universal path quantification.
        proc = parse_program(
            """
            main(n) {
              decl a;
              a := 2;
              if 1 goto 4 else 4;
              a := a;
              return a;
            }
            """
        ).proc("main")
        compare(const_prop.pattern, proc, registry, engine)
        facts = engine.guard_facts(
            const_prop.pattern.psi1, const_prop.pattern.psi2, "forward", proc
        )
        assert facts[3]  # unreachable node carries the full universe

    def test_entry_node_is_empty_forward(self, registry, engine):
        proc = parse_program(
            """
            main(n) {
              n := 2;
              return n;
            }
            """
        ).proc("main")
        facts = engine.guard_facts(
            const_prop.pattern.psi1, const_prop.pattern.psi2, "forward", proc
        )
        assert facts[0] == frozenset()
