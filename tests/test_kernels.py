"""Cross-checks between the flat integer-id kernel and the reference e-graph.

The flat kernel (struct-of-arrays congruence closure + compiled trigger
programs, ``src/repro/prover/kernels/``) is a re-representation of the
reference ``_Node`` object graph, not a different prover: both must return
byte-identical results — same verdicts, same counterexample contexts, same
round-by-round instance admissions, same search counters — while the flat
kernel performs strictly fewer Python-level structural visits.  These tests
pin that contract (docs/KERNELS.md):

* obligation-level cross-checks over the shipped optimization suite
  (fast subset always; the full suite under ``-m slow``), comparing report
  fingerprints, search fingerprints, and structural-visit counts;
* 50 seeded-random goals with round-instance recording;
* every stored fuzzing-corpus entry replayed under both kernels, with the
  known-unsound rules additionally cross-checked fingerprint-for-fingerprint;
* randomized union-find/arena traces (add_term / assert_eq / assert_diseq /
  push / pop) compared state-for-state between the two substrates;
* proof-cache hits must survive a kernel switch: the kernel is excluded
  from the cache fingerprint *because* results are byte-identical, and the
  schema version must not change for a pure re-representation.
"""

import random
from dataclasses import replace

import pytest

from repro.api import ProverOptions, VerifyOptions
from repro.fuzz import DEFAULT_CORPUS_DIR, load_entries, replay_entry
from repro.fuzz.campaign import FRONTIER_PROVER_OPTIONS
from repro.logic.formulas import And, Eq, Implies, Pred
from repro.logic.terms import App, IntConst
from repro.opts import ALL_OPTIMIZATIONS, taintedness_analysis
from repro.prover import Prover, ProverConfig
from repro.prover.egraph import EGraph
from repro.prover.kernels import (
    KERNEL_NAMES,
    FlatEGraph,
    compile_trigger,
    kernel_identity,
    make_egraph,
)
from repro.verify import SoundnessChecker
from repro.verify.cache import SCHEMA_VERSION, config_fingerprint

from tests.test_prover_incremental import (
    FAST_OPTS,
    _explosive_setup,
    _GoalGen,
    _random_theory,
    _report_fingerprint,
)

KERNELS = ("reference", "flat")


# ---------------------------------------------------------------------------
# Obligation-level byte-identity over the shipped suite.
# ---------------------------------------------------------------------------


def _check_kernels(opt):
    fps, stats = {}, {}
    for kernel in KERNELS:
        checker = SoundnessChecker(
            config=ProverConfig(timeout_s=120.0, kernel=kernel)
        )
        report = checker.check_optimization(opt)
        fps[kernel] = _report_fingerprint(report)
        stats[kernel] = report.prover_stats()
    assert fps["reference"] == fps["flat"], f"{opt.name}: kernels disagree"
    # The search itself must be the same search: every counter that drives
    # or observes control flow coincides...
    assert (
        stats["reference"].search_fingerprint()
        == stats["flat"].search_fingerprint()
    ), f"{opt.name}: search counters diverged"
    # ...while the flat kernel touches strictly fewer Python-level objects
    # (the tentpole's perf claim, stated as an invariant).
    assert stats["flat"].struct_visits < stats["reference"].struct_visits, (
        f"{opt.name}: flat visits {stats['flat'].struct_visits} "
        f">= reference visits {stats['reference'].struct_visits}"
    )


@pytest.mark.parametrize("opt", FAST_OPTS, ids=lambda o: o.name)
def test_kernels_identical_fast(opt):
    _check_kernels(opt)


@pytest.mark.slow
@pytest.mark.parametrize("opt", ALL_OPTIMIZATIONS, ids=lambda o: o.name)
def test_kernels_identical_full_suite(opt):
    _check_kernels(opt)


@pytest.mark.slow
def test_kernels_identical_analysis():
    fps = {}
    for kernel in KERNELS:
        checker = SoundnessChecker(
            config=ProverConfig(timeout_s=120.0, kernel=kernel)
        )
        fps[kernel] = _report_fingerprint(
            checker.check_analysis(taintedness_analysis)
        )
    assert fps["reference"] == fps["flat"]


# ---------------------------------------------------------------------------
# Seeded-random goals: verdict, context, rounds, and counters per kernel.
# ---------------------------------------------------------------------------


def _prove_both_kernels(goal, axioms=(), cfg_kw=None):
    kw = dict(timeout_s=20.0, record_round_instances=True)
    kw.update(cfg_kw or {})
    out = {}
    for kernel in KERNELS:
        prover = Prover(list(axioms), config=ProverConfig(kernel=kernel, **kw))
        result = prover.prove(goal)
        rounds = [sorted(r) for r in (result.round_instances or [])]
        out[kernel] = (
            result.status,
            tuple(result.context),
            rounds,
            result.stats.search_fingerprint(),
        )
    assert out["reference"] == out["flat"], "kernels diverged"
    return out["reference"]


def test_random_goals_identical():
    """50 seeded-random goals: same verdict, context, rounds, counters."""
    theory = _random_theory()
    proved = 0
    for seed in range(50):
        gen = _GoalGen(seed)
        goal = gen.formula()
        if seed % 2:
            other = gen.formula()
            goal = Implies(And((goal, Implies(goal, other))), other)
        status, _, _, _ = _prove_both_kernels(
            goal,
            theory,
            cfg_kw=dict(max_rounds=4, max_instances=500, timeout_s=10.0),
        )
        proved += status.name == "PROVED"
    assert 0 < proved < 50


def test_quantified_goal_rounds_identical():
    """A goal whose proof needs instantiation rounds, both kernels."""
    from repro.logic.terms import LVar
    from repro.logic.formulas import Forall

    x, y = LVar("x"), LVar("y")
    f = lambda t: App("f", (t,))
    axioms = [
        Forall(("x",), Implies(Pred("P", (x,)), Pred("P", (f(x),)))),
        Forall(
            ("x", "y"),
            Implies(And((Pred("P", (x,)), Eq(f(x), f(y)))), Pred("Q", (y,))),
        ),
    ]
    goal = Implies(Pred("P", (App("a"),)), Pred("Q", (f(App("a")),)))
    status, _, rounds, _ = _prove_both_kernels(goal, axioms)
    assert status.name == "PROVED"
    assert rounds, "instantiation rounds were recorded"


# ---------------------------------------------------------------------------
# Fuzzing corpus: every stored failure replays identically per kernel.
# ---------------------------------------------------------------------------

ENTRIES = load_entries(DEFAULT_CORPUS_DIR)


def _kernel_verify_options(kernel):
    return VerifyOptions(
        prover=replace(FRONTIER_PROVER_OPTIONS, kernel=kernel)
    )


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "path,entry", ENTRIES, ids=[p.name for p, _ in ENTRIES]
)
def test_corpus_replays_per_kernel(path, entry, kernel):
    ok, detail = replay_entry(entry, _kernel_verify_options(kernel))
    assert ok, f"{path.name} [{kernel}]: {detail}"


@pytest.mark.parametrize(
    "path,entry",
    [(p, e) for p, e in ENTRIES if e.kind == "unsound-rule"],
    ids=[p.name for p, e in ENTRIES if e.kind == "unsound-rule"],
)
def test_corpus_unsound_rules_fingerprint_identical(path, entry):
    """Known-unsound rules: the rejection report is byte-identical."""
    from repro.api import check_optimization
    from repro.fuzz.rules import rule_from_json

    rule = rule_from_json(entry.data["rule"])
    fps = {}
    for kernel in KERNELS:
        report = check_optimization(rule, _kernel_verify_options(kernel))
        assert not report.sound, f"{path.name} [{kernel}]: now proves SOUND"
        fps[kernel] = _report_fingerprint(report)
    assert fps["reference"] == fps["flat"], f"{path.name}: kernels disagree"


# ---------------------------------------------------------------------------
# Randomized substrate traces: the two e-graphs, state for state.
#
# The prover-level tests above exercise the kernels through one search
# policy; this drives the substrates directly with operation sequences the
# search would never emit (deep push/pop nests, disequalities between
# interior terms, redundant asserts), comparing every observable after
# every operation.
# ---------------------------------------------------------------------------

_TRACE_CONSTRUCTORS = ("nil", "cons")


class _TraceGen:
    """Seeded random ground terms over a vocabulary with numerals,
    constructors, and interpreted arithmetic heads."""

    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.consts = [App(n) for n in "abcd"]

    def term(self, depth=2):
        r = self.rng
        if depth == 0 or r.random() < 0.45:
            roll = r.random()
            if roll < 0.5:
                return r.choice(self.consts)
            if roll < 0.8:
                return IntConst(r.randrange(3))
            return App("nil")
        fn = r.choice(["f", "g", "pair", "cons", "add"])
        if fn in ("pair", "cons", "add"):
            return App(fn, (self.term(depth - 1), self.term(depth - 1)))
        return App(fn, (self.term(depth - 1),))


def _observables(eg, probe_terms):
    """Everything a client can see, in kernel-independent form."""
    n = len(eg.node_terms)
    finds = tuple(eg.find(i) for i in range(n))
    classes = {}
    for i, root in enumerate(finds):
        classes.setdefault(root, []).append(i)
    membership = frozenset(frozenset(v) for v in classes.values())
    ints = tuple(eg.class_int_value(root) for root in sorted(classes))
    reprs = tuple(str(eg.representative(root)) for root in sorted(classes))
    pairs = []
    for i in range(0, len(probe_terms) - 1, 2):
        t1, t2 = probe_terms[i], probe_terms[i + 1]
        pairs.append((eg.are_equal(t1, t2), eg.are_diseq(t1, t2)))
    return (
        n,
        finds,
        membership,
        ints,
        reprs,
        tuple(eg.events),
        eg.generation,
        eg.conflict,
        tuple(pairs),
    )


@pytest.mark.parametrize("seed", range(12))
def test_random_traces_identical(seed):
    gen = _TraceGen(seed)
    rng = gen.rng
    ref = EGraph(constructors=_TRACE_CONSTRUCTORS)
    flat = FlatEGraph(constructors=_TRACE_CONSTRUCTORS)
    added = []
    depth = 0
    for step in range(120):
        roll = rng.random()
        if roll < 0.35 or not added:
            t = gen.term()
            added.append(t)
            assert ref.add_term(t) == flat.add_term(t)
        elif roll < 0.60:
            t1, t2 = rng.choice(added), rng.choice(added)
            assert ref.assert_eq(t1, t2) == flat.assert_eq(t1, t2)
        elif roll < 0.75:
            t1, t2 = rng.choice(added), rng.choice(added)
            assert ref.assert_diseq(t1, t2) == flat.assert_diseq(t1, t2)
        elif roll < 0.85:
            ref.push()
            flat.push()
            depth += 1
        elif roll < 0.95 and depth:
            ref.pop()
            flat.pop()
            depth -= 1
        else:
            assert ref.bump_generation() == flat.bump_generation()
        probes = [rng.choice(added) for _ in range(6)] if added else []
        assert _observables(ref, probes) == _observables(flat, probes), (
            f"seed {seed}: state diverged after step {step}"
        )
    # Unwind every remaining scope: pop must restore both substrates to
    # the same (still mutually identical) state.
    while depth:
        ref.pop()
        flat.pop()
        depth -= 1
        probes = [rng.choice(added) for _ in range(6)]
        assert _observables(ref, probes) == _observables(flat, probes)


def test_members_agree_as_sets():
    """Member iteration order may differ (circular cycle vs list); the sets
    must not."""
    gen = _TraceGen(99)
    ref = EGraph(constructors=_TRACE_CONSTRUCTORS)
    flat = FlatEGraph(constructors=_TRACE_CONSTRUCTORS)
    terms = [gen.term(3) for _ in range(30)]
    for t in terms:
        ref.add_term(t)
        flat.add_term(t)
    for i in range(0, 28, 2):
        ref.assert_eq(terms[i], terms[i + 1])
        flat.assert_eq(terms[i], terms[i + 1])
    for i in range(len(ref.node_terms)):
        assert set(ref.members(ref.find(i))) == set(flat.members(flat.find(i)))


# ---------------------------------------------------------------------------
# Timeout enforcement inside the flat matcher.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNELS)
def test_timeout_enforced_mid_match(kernel):
    import time

    axioms, goal = _explosive_setup()
    cfg = ProverConfig(
        timeout_s=0.2, max_rounds=50, max_instances=500_000, kernel=kernel
    )
    prover = Prover(axioms, config=cfg)
    start = time.monotonic()
    result = prover.prove(goal)
    elapsed = time.monotonic() - start
    assert not result.proved
    assert elapsed < 5.0, f"prove() took {elapsed:.2f}s against timeout_s=0.2"
    assert any("resource limit" in line for line in result.context)


# ---------------------------------------------------------------------------
# Cache identity: the kernel must be invisible to the proof cache.
# ---------------------------------------------------------------------------


def test_cache_schema_and_fingerprint_exclude_kernel():
    assert SCHEMA_VERSION == 4, (
        "kernel selection changed the cache schema; a pure re-representation "
        "must not invalidate existing caches"
    )
    assert config_fingerprint(
        ProverConfig(kernel="flat")
    ) == config_fingerprint(ProverConfig(kernel="reference"))


def test_cache_hits_survive_kernel_switch(tmp_path):
    by_name = {o.name: o for o in ALL_OPTIMIZATIONS}
    opt = by_name["constProp"]
    first = SoundnessChecker(
        options=VerifyOptions(
            cache_dir=str(tmp_path),
            prover=ProverOptions(kernel="flat", timeout_s=120.0),
        )
    )
    report_flat = first.check_optimization(opt)
    assert first.cache is not None and first.cache.stats.stores > 0
    second = SoundnessChecker(
        options=VerifyOptions(
            cache_dir=str(tmp_path),
            prover=ProverOptions(kernel="reference", timeout_s=120.0),
        )
    )
    report_ref = second.check_optimization(opt)
    assert second.cache.stats.hits > 0, "kernel switch lost every cache hit"
    assert second.cache.stats.misses == 0, (
        "some obligations re-proved after a kernel switch"
    )
    assert _report_fingerprint(report_flat) == _report_fingerprint(report_ref)


# ---------------------------------------------------------------------------
# Kernel plumbing: registry, identities, trigger compilation errors.
# ---------------------------------------------------------------------------


def test_make_egraph_and_identities():
    assert set(KERNELS) == set(KERNEL_NAMES)
    assert isinstance(make_egraph("reference", _TRACE_CONSTRUCTORS), EGraph)
    assert isinstance(make_egraph("flat", _TRACE_CONSTRUCTORS), FlatEGraph)
    with pytest.raises(ValueError):
        make_egraph("turbo", ())
    assert kernel_identity("reference") == "reference/object-graph"
    assert kernel_identity("flat").startswith("flat/")
    with pytest.raises(ValueError):
        Prover([], config=ProverConfig(kernel="turbo")).prove(
            Eq(App("a"), App("a"))
        )


def test_stats_report_kernel_identity():
    for kernel in KERNELS:
        prover = Prover([], config=ProverConfig(kernel=kernel))
        result = prover.prove(Eq(App("a"), App("a")))
        assert result.stats.kernel == kernel_identity(kernel)
        assert kernel_identity(kernel) in result.stats.table()
        assert "structural visits" in result.stats.table()


def test_compile_trigger_rejects_bare_variable():
    from repro.logic.terms import LVar

    eg = FlatEGraph()
    with pytest.raises(ValueError, match="bare variable"):
        compile_trigger(eg, (LVar("x"),))
