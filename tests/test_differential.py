"""Differential testing (experiment E7): optimizations proven sound by the
checker preserve behaviour on randomly generated programs.

Also includes a meta-test: the harness itself detects the behaviour change
introduced by a known-unsound transformation, so a silent pass is not an
artifact of a toothless oracle.
"""

import pytest

from repro.il import parse_program
from repro.il.generator import GeneratorConfig
from repro.fuzz import differential_campaign
from repro.fuzz.oracle import check_equivalence
from repro.opts import (
    branch_fold,
    const_fold,
    const_prop,
    const_prop_pt,
    copy_prop,
    cse,
    dae,
    load_elim,
    self_assign_removal,
)
from repro.opts.buggy import assign_removal_overbroad

SEEDS = range(40)
PTR_CONFIG = GeneratorConfig(allow_pointers=True, num_stmts=14)


def assert_clean(result, min_transformations=1):
    assert result.ok, "\n\n".join(result.mismatches[:3])
    assert result.transformations >= min_transformations, (
        "campaign exercised no transformations; tests prove nothing"
    )


class TestForwardOptimizations:
    def test_const_prop(self):
        assert_clean(differential_campaign(const_prop, seeds=SEEDS))

    def test_const_prop_with_pointers(self):
        assert_clean(
            differential_campaign(const_prop, seeds=SEEDS, config=PTR_CONFIG)
        )

    def test_const_prop_pointer_aware(self):
        assert_clean(
            differential_campaign(const_prop_pt, seeds=SEEDS, config=PTR_CONFIG)
        )

    def test_copy_prop(self):
        assert_clean(differential_campaign(copy_prop, seeds=SEEDS))

    def test_const_fold(self):
        assert_clean(differential_campaign(const_fold, seeds=SEEDS))

    def test_branch_fold(self):
        # The generator rarely emits constant branch conditions, so seed a
        # wider net and accept fewer hits.
        result = differential_campaign(
            branch_fold, seeds=range(120), config=GeneratorConfig(num_branches=4)
        )
        assert result.ok, "\n\n".join(result.mismatches[:3])

    def test_cse(self):
        assert_clean(differential_campaign(cse, seeds=SEEDS))

    def test_load_elim(self):
        result = differential_campaign(load_elim, seeds=range(80), config=PTR_CONFIG)
        assert result.ok, "\n\n".join(result.mismatches[:3])

    def test_self_assign_removal(self):
        result = differential_campaign(self_assign_removal, seeds=range(80))
        assert result.ok, "\n\n".join(result.mismatches[:3])


class TestBackwardOptimizations:
    def test_dae(self):
        assert_clean(differential_campaign(dae, seeds=SEEDS))

    def test_dae_with_pointers(self):
        assert_clean(differential_campaign(dae, seeds=SEEDS, config=PTR_CONFIG))


class TestHarnessSensitivity:
    def test_unsound_transformation_caught(self):
        # Removing arbitrary assignments must produce visible mismatches —
        # otherwise the oracle is too weak to mean anything.
        result = differential_campaign(assign_removal_overbroad, seeds=range(60))
        assert result.mismatches


RETURNS_VALUE = """
main(n) {
  decl a;
  a := n + 1;
  return a;
}
"""

GETS_STUCK = """
main(n) {
  decl a;
  a := n / 0;
  return a;
}
"""

DIVERGES = """
main(n) {
  decl a;
  a := 0;
  a := a + 1;
  if 1 goto 2 else 2;
  return a;
}
"""


class TestOneDirectionalEquivalence:
    """Regression lock on the paper's section-4 equivalence definition:
    only completed runs of the *original* program constrain the transformed
    one — but those runs must complete (and agree) in the transformed
    program, so a transformed run that gets stuck is a flagged violation."""

    def test_transformed_stuck_is_flagged_distinctly(self):
        mismatch = check_equivalence(
            parse_program(RETURNS_VALUE), parse_program(GETS_STUCK), args=(3,)
        )
        assert mismatch is not None
        assert "STUCK" in mismatch
        assert "progress violation" in mismatch

    def test_transformed_fuel_exhaustion_is_flagged(self):
        mismatch = check_equivalence(
            parse_program(RETURNS_VALUE), parse_program(DIVERGES), args=(3,),
            fuel=2_000,
        )
        assert mismatch is not None
        assert "fuel" in mismatch

    def test_wrong_value_is_flagged(self):
        changed = RETURNS_VALUE.replace("n + 1", "n + 2")
        mismatch = check_equivalence(
            parse_program(RETURNS_VALUE), parse_program(changed), args=(3,)
        )
        assert mismatch is not None
        assert "returned 4" in mismatch and "returned 5" in mismatch

    def test_original_stuck_constrains_nothing(self):
        # One-directional: the original getting stuck licenses *any*
        # transformed behaviour, including returning a value.
        assert check_equivalence(
            parse_program(GETS_STUCK), parse_program(RETURNS_VALUE), args=(3,)
        ) is None

    def test_original_divergence_constrains_nothing(self):
        assert check_equivalence(
            parse_program(DIVERGES), parse_program(RETURNS_VALUE), args=(3,),
            fuel=2_000,
        ) is None

    def test_identical_programs_equivalent(self):
        assert check_equivalence(
            parse_program(RETURNS_VALUE), parse_program(RETURNS_VALUE),
            args=range(-3, 4),
        ) is None
