"""Parallel obligation discharge (repro.verify.parallel).

The contract under test: with ``jobs > 1`` the checker produces the *same
verdicts in the same order* as a serial checker — for sound optimizations,
for the deliberately buggy variants, and for the whole shipped
``cobalt/suite.cobalt`` file (slow) — and a wedged obligation is cut off by
the per-obligation hard timeout as ``unknown`` instead of hanging the run.
"""

import copy
import time

import pytest

from repro.cobalt.labels import standard_registry
from repro.prover import ProverConfig
from repro.api import VerifyOptions
from repro.verify import SoundnessChecker
from repro.verify.checker import discharge_obligation
from repro.verify.obligations import ObligationBuilder
from repro.verify.parallel import build_prover, discharge_parallel
from repro.opts import (
    branch_fold,
    const_fold,
    const_prop,
    dae,
    self_assign_removal,
)
from repro.opts.buggy import (
    assign_removal_overbroad,
    const_prop_wrong_witness,
    copy_prop_no_target_check,
)

FAST = ProverConfig(timeout_s=60.0)

FAST_ITEMS = [
    const_prop,
    const_fold,
    branch_fold,
    self_assign_removal,
    const_prop_wrong_witness,
    copy_prop_no_target_check,
    assign_removal_overbroad,
]


def _canonicals(checker, items):
    return [checker.check_optimization(opt).canonical() for opt in items]


class TestParallelMatchesSerial:
    def test_fast_subset_identical_reports(self):
        serial = SoundnessChecker(config=FAST)
        parallel = SoundnessChecker(config=FAST, options=VerifyOptions(jobs=2))
        assert _canonicals(parallel, FAST_ITEMS) == _canonicals(serial, FAST_ITEMS)

    def test_results_keep_obligation_order(self):
        obligations = ObligationBuilder(standard_registry()).forward_obligations(
            const_prop.pattern
        )
        results = discharge_parallel("constProp", obligations, FAST, jobs=2)
        assert [r.obligation for r in results] == [ob.name for ob in obligations]

    @pytest.mark.slow
    def test_whole_suite_file_identical_reports(self):
        from pathlib import Path

        from repro.cli import parse_blocks
        from repro.cobalt.dsl import PureAnalysis
        from repro.opts import buggy

        suite_path = Path(__file__).parent.parent / "cobalt" / "suite.cobalt"
        items = parse_blocks(suite_path.read_text())
        config = ProverConfig(timeout_s=90.0)
        serial = SoundnessChecker(config=config)
        parallel = SoundnessChecker(config=config, options=VerifyOptions(jobs=2))
        for item in items:
            if isinstance(item, PureAnalysis):
                left = serial.check_analysis(item)
                right = parallel.check_analysis(item)
            else:
                left = serial.check_pattern(item)
                right = parallel.check_pattern(item)
            assert left.canonical() == right.canonical(), item.name
        for opt in buggy.ALL_BUGGY:
            left = serial.check_optimization(opt)
            right = parallel.check_optimization(opt)
            assert not right.sound, f"{opt.name} must stay rejected in parallel"
            assert left.canonical() == right.canonical(), opt.name


class TestTimeouts:
    def test_hard_timeout_yields_unknown_not_hang(self):
        # deadAssignElim's B3 takes ~10s of search at full budget; with a
        # 0.3s hard wall-clock cap the caller must get an ``unknown``
        # verdict back promptly while the worker self-terminates via the
        # prover's (short) cooperative timeout.
        obligations = ObligationBuilder(standard_registry()).backward_obligations(
            dae.pattern
        )[2:3]
        config = ProverConfig(timeout_s=3.0)
        start = time.monotonic()
        results = discharge_parallel(
            "deadAssignElim", obligations, config, jobs=1, hard_timeout_s=0.3
        )
        elapsed = time.monotonic() - start
        assert len(results) == 1
        assert not results[0].proved
        assert any("hard timeout" in line for line in results[0].context)
        assert elapsed < 10.0, "hard timeout did not cut the wait short"

    def test_prover_timeout_yields_unknown(self):
        # The cooperative path: a tiny prover budget answers unknown.
        checker = SoundnessChecker(
            config=ProverConfig(timeout_s=0.01), options=VerifyOptions(jobs=2)
        )
        report = checker.check_pattern(dae.pattern)
        assert not report.sound
        assert all(not r.proved for r in report.results)


class TestFallbacks:
    def test_unpicklable_obligation_falls_back_to_serial(self):
        obligations = ObligationBuilder(standard_registry()).forward_obligations(
            const_fold.pattern
        )
        bad = copy.copy(obligations[0])
        object.__setattr__(bad, "hook", lambda: None)  # poisons pickling
        prover = build_prover(FAST)
        results = discharge_parallel(
            "constFold", [bad], FAST, jobs=2, fallback_prover=prover
        )
        expected = discharge_obligation(prover, "constFold", obligations[0], FAST)
        assert len(results) == 1
        assert results[0].proved == expected.proved
        assert results[0].obligation == expected.obligation

    def test_jobs_one_never_spawns_pool(self, monkeypatch):
        import repro.verify.parallel as parallel_mod

        def boom(*args, **kwargs):
            raise AssertionError("jobs=1 must stay serial")

        monkeypatch.setattr(parallel_mod, "discharge_parallel", boom)
        checker = SoundnessChecker(config=FAST, options=VerifyOptions(jobs=1))
        assert checker.check_optimization(const_fold).sound


class TestWorkerL0Cache:
    def test_duplicate_obligations_replay_from_worker_memory(self):
        # A single worker (jobs=1 pool still has one real worker process)
        # sees the same obligation three times; the second and third must
        # replay from the worker's in-memory L0 with identical verdicts.
        ob = ObligationBuilder(standard_registry()).forward_obligations(
            const_fold.pattern
        )[0]
        results = discharge_parallel("constFold", [ob, ob, ob], FAST, jobs=1)
        assert [r.proved for r in results] == [True, True, True]
        assert not results[0].cached
        assert results[1].cached and results[2].cached
        assert {r.obligation for r in results} == {ob.name}
