"""Unit tests for terms, formulas, NNF, skolemization and clausification."""

from repro.logic.formulas import (
    And,
    Bottom,
    Clause,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    Pred,
    Top,
    clausify,
    conj,
    disj,
    formula_free_vars,
    nnf,
    skolemize,
)
from repro.logic.terms import App, IntConst, LVar, free_vars, is_ground, match, mk, subst


class TestTerms:
    def test_free_vars(self):
        t = mk("f", LVar("x"), mk("g", LVar("y"), IntConst(3)))
        assert free_vars(t) == {"x", "y"}

    def test_ground(self):
        assert is_ground(mk("f", IntConst(1)))
        assert not is_ground(mk("f", LVar("x")))

    def test_subst(self):
        t = mk("f", LVar("x"), LVar("y"))
        out = subst(t, {"x": IntConst(1)})
        assert out == mk("f", IntConst(1), LVar("y"))

    def test_match_success(self):
        pattern = mk("f", LVar("x"), LVar("x"))
        target = mk("f", IntConst(2), IntConst(2))
        assert match(pattern, target) == {"x": IntConst(2)}

    def test_match_nonlinear_failure(self):
        pattern = mk("f", LVar("x"), LVar("x"))
        target = mk("f", IntConst(2), IntConst(3))
        assert match(pattern, target) is None

    def test_match_mismatched_head(self):
        assert match(mk("f", LVar("x")), mk("g", IntConst(1))) is None


class TestNnf:
    def test_implies(self):
        p, q = Pred("p"), Pred("q")
        out = nnf(Implies(p, q))
        assert out == Or((Not(p), q))

    def test_negated_and(self):
        p, q = Pred("p"), Pred("q")
        out = nnf(Not(And((p, q))))
        assert out == Or((Not(p), Not(q)))

    def test_negated_forall_becomes_exists(self):
        body = Pred("p", (LVar("x"),))
        out = nnf(Not(Forall(("x",), body)))
        assert isinstance(out, Exists)

    def test_iff_expansion(self):
        p, q = Pred("p"), Pred("q")
        out = nnf(Iff(p, q))
        assert isinstance(out, And)

    def test_double_negation(self):
        p = Pred("p")
        assert nnf(Not(Not(p))) == p


class TestSkolemize:
    def test_toplevel_exists_becomes_constant(self):
        f = Exists(("x",), Pred("p", (LVar("x"),)))
        out = skolemize(nnf(f))
        assert isinstance(out, Pred)
        arg = out.args[0]
        assert isinstance(arg, App) and not arg.args

    def test_nested_exists_becomes_function(self):
        f = Forall(("y",), Exists(("x",), Eq(LVar("x"), LVar("y"))))
        out = skolemize(nnf(f))
        assert isinstance(out, Forall)
        body = out.body
        assert isinstance(body, Eq)
        assert isinstance(body.lhs, App)
        assert body.lhs.args == (LVar("y"),)


class TestClausify:
    def test_simple_implication(self):
        p, q = Pred("p"), Pred("q")
        clauses = clausify(Implies(p, q))
        assert len(clauses) == 1
        lits = clauses[0].literals
        assert Literal(False, p) in lits and Literal(True, q) in lits

    def test_conjunction_splits(self):
        p, q = Pred("p"), Pred("q")
        clauses = clausify(And((p, q)))
        assert len(clauses) == 2

    def test_distribution(self):
        p, q, r = Pred("p"), Pred("q"), Pred("r")
        clauses = clausify(Or((And((p, q)), r)))
        assert len(clauses) == 2
        for clause in clauses:
            assert Literal(True, r) in clause.literals

    def test_tautology_dropped(self):
        p = Pred("p")
        clauses = clausify(Or((p, Not(p))))
        assert clauses == []

    def test_reflexive_equality_dropped(self):
        t = mk("f", IntConst(1))
        clauses = clausify(Eq(t, t))
        assert clauses == []

    def test_negated_goal_with_quantifier(self):
        goal = Forall(("x",), Implies(Pred("p", (LVar("x"),)), Pred("q", (LVar("x"),))))
        clauses = clausify(Not(goal))
        # Skolemized: p(sk) and ~q(sk).
        assert len(clauses) == 2
        assert all(c.is_ground() for c in clauses)

    def test_triggers_propagate(self):
        trig = ((mk("f", LVar("x")),),)
        f = Forall(("x",), Pred("p", (LVar("x"),)), trig)
        clauses = clausify(f)
        assert clauses[0].triggers == trig

    def test_free_vars_helper(self):
        f = Forall(("x",), Eq(LVar("x"), LVar("y")))
        assert formula_free_vars(f) == {"y"}

    def test_conj_disj_simplification(self):
        assert isinstance(conj([]), Top)
        assert isinstance(disj([]), Bottom)
        assert isinstance(conj([Top(), Bottom()]), Bottom)
        assert isinstance(disj([Top(), Bottom()]), Top)
