"""End-to-end soundness-checker tests: the paper's headline results.

* every optimization and analysis of the suite is automatically proven
  sound (section 5.1: "we have implemented and automatically proven sound a
  dozen Cobalt optimizations and analyses");
* every deliberately buggy variant is rejected, with a counterexample
  context, at the obligation where the bug lives (section 6, debugging
  value).
"""

import pytest

from repro.prover import ProverConfig
from repro.verify import SoundnessChecker
from repro.opts import (
    ALL_OPTIMIZATIONS,
    branch_fold,
    const_fold,
    const_prop,
    const_prop_pt,
    copy_prop,
    cse,
    dae,
    load_elim,
    pre_duplicate,
    self_assign_removal,
    taintedness_analysis,
)
from repro.opts.buggy import (
    assign_removal_overbroad,
    const_prop_no_pointers,
    const_prop_wrong_witness,
    copy_prop_no_target_check,
    cse_self_referential,
    dae_no_use_check,
    load_elim_direct_assign,
)


class _CachingChecker(SoundnessChecker):
    """Caches per-optimization reports so tests can re-examine them."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._report_cache = {}

    def check_optimization(self, opt):
        if opt.name not in self._report_cache:
            self._report_cache[opt.name] = super().check_optimization(opt)
        return self._report_cache[opt.name]


@pytest.fixture(scope="module")
def checker():
    return _CachingChecker(config=ProverConfig(timeout_s=90))


class TestSoundOptimizations:
    def test_const_prop(self, checker):
        assert checker.check_optimization(const_prop).sound

    def test_const_prop_pointer_aware(self, checker):
        report = checker.check_optimization(const_prop_pt)
        assert report.sound
        assert report.dependencies and report.dependencies[0].name == "taintedness"

    def test_copy_prop(self, checker):
        assert checker.check_optimization(copy_prop).sound

    def test_const_fold(self, checker):
        assert checker.check_optimization(const_fold).sound

    def test_branch_fold(self, checker):
        assert checker.check_optimization(branch_fold).sound

    def test_cse(self, checker):
        assert checker.check_optimization(cse).sound

    def test_load_elim(self, checker):
        assert checker.check_optimization(load_elim).sound

    def test_dae(self, checker):
        assert checker.check_optimization(dae).sound

    def test_pre_duplicate(self, checker):
        assert checker.check_optimization(pre_duplicate).sound

    def test_self_assign_removal(self, checker):
        assert checker.check_optimization(self_assign_removal).sound

    def test_taintedness_analysis(self, checker):
        assert checker.check_analysis(taintedness_analysis).sound

    def test_whole_suite_obligation_counts(self, checker):
        # Forward patterns discharge F1-F3, backward ones B1-B3.
        report = checker.check_optimization(dae)
        assert [r.obligation for r in report.results] == ["B1", "B2", "B3"]
        report = checker.check_optimization(const_prop)
        assert [r.obligation for r in report.results] == ["F1", "F2", "F3"]


class TestBuggyVariantsRejected:
    """Section 6: the checker as a bug-finding tool.

    Each variant must be rejected at the obligation its bug violates."""

    def _failed(self, checker, opt):
        report = checker.check_optimization(opt)
        assert not report.sound
        return {r.obligation for r in report.failed_obligations()}, report

    def test_const_prop_ignoring_pointers(self, checker):
        failed, report = self._failed(checker, const_prop_no_pointers)
        assert "F2" in failed  # pointer store in the region breaks the witness

    def test_load_elim_direct_assignment_bug(self, checker):
        # The paper's flagship section 6 story.
        failed, report = self._failed(checker, load_elim_direct_assign)
        assert "F2" in failed

    def test_dae_without_use_check(self, checker):
        # x := x + 1 both defines and uses x; treating it as enabling is
        # wrong, caught when the traces fail to merge (B3).
        failed, report = self._failed(checker, dae_no_use_check)
        assert "B3" in failed

    def test_copy_prop_without_target_check(self, checker):
        failed, report = self._failed(checker, copy_prop_no_target_check)
        assert "F2" in failed

    def test_cse_self_referential(self, checker):
        failed, report = self._failed(checker, cse_self_referential)
        assert "F1" in failed  # X := E with X in E does not establish the witness

    def test_wrong_witness_rejected(self, checker):
        # Footnote 1: correctness never depends on trusting the witness —
        # a bogus witness simply fails its proofs.
        failed, report = self._failed(checker, const_prop_wrong_witness)
        assert failed  # at least one obligation fails

    def test_overbroad_assign_removal(self, checker):
        failed, report = self._failed(checker, assign_removal_overbroad)
        assert "F3" in failed

    def test_counterexample_context_reported(self, checker):
        report = checker.check_optimization(assign_removal_overbroad)
        failing = report.failed_obligations()[0]
        assert failing.context  # Simplify-style counterexample context

    def test_insertion_without_unchanged_rejected(self, checker):
        # The footnote-6 progress conditions: inserting X := E where the
        # region may change E's operands can turn a returning run into a
        # stuck one (e.g. a division that is safe later but not at the
        # insertion point).  Caught at the backward-evaluability obligation.
        from repro.opts.buggy import pre_duplicate_no_unchanged

        report = checker.check_optimization(pre_duplicate_no_unchanged)
        assert not report.sound
        assert "B0b" in {r.obligation for r in report.failed_obligations()}

    def test_insertion_progress_bug_is_real(self, checker):
        # The concrete miscompilation justifying the rejection above.
        from repro.il import parse_program
        from repro.cobalt.engine import CobaltEngine
        from repro.cobalt.labels import standard_registry
        from repro.opts.buggy import pre_duplicate_no_unchanged
        from repro.fuzz.oracle import check_equivalence

        program = parse_program(
            """
            main(n) {
              decl y;
              decl x;
              skip;
              y := 2;
              x := 1 / y;
              return x;
            }
            """
        )
        engine = CobaltEngine(standard_registry())
        delta = engine.legal_transformations(
            pre_duplicate_no_unchanged.pattern, program.main
        )
        assert any(inst.index == 2 for inst in delta)  # the skip is "legal"
        transformed = program.with_proc(
            engine.apply_pattern(pre_duplicate_no_unchanged.pattern, program.main, delta)
        )
        # y is 0 at the insertion point: 1/0 sticks where the original ran.
        assert check_equivalence(program, transformed, [0]) is not None

    def test_backward_progress_obligations_present(self, checker):
        from repro.opts import pre_duplicate

        report = checker.check_optimization(pre_duplicate)
        names = [r.obligation for r in report.results]
        assert names == ["B1", "B2", "B3", "B0a", "B0b", "B0c"]
        assert report.sound

    def test_dae_has_no_progress_obligations(self, checker):
        # s' = skip: the evaluability invariant is trivial.
        report = checker.check_optimization(dae)
        assert [r.obligation for r in report.results] == ["B1", "B2", "B3"]
