"""Tests for report objects and result rendering (checker and prover)."""

import pytest

from repro.prover.core import Result, Stats, Status
from repro.verify.checker import ObligationResult, SoundnessReport


class TestSoundnessReport:
    def _ok(self, name, seconds=0.5):
        return ObligationResult(name, True, seconds)

    def _bad(self, name, seconds=0.5, context=None):
        return ObligationResult(name, False, seconds, context or ["p [decision@0]"])

    def test_sound_requires_all_proved(self):
        report = SoundnessReport("x", [self._ok("F1"), self._ok("F2"), self._ok("F3")])
        assert report.sound
        report.results.append(self._bad("F2"))
        assert not report.sound

    def test_empty_report_is_not_sound(self):
        assert not SoundnessReport("x").sound

    def test_error_forces_rejection(self):
        report = SoundnessReport("x", [self._ok("F1")], error="boom")
        assert not report.sound
        assert "boom" in report.summary()

    def test_dependencies_propagate(self):
        dep = SoundnessReport("analysis", [self._bad("F1")])
        report = SoundnessReport("opt", [self._ok("F1")], dependencies=[dep])
        assert not report.sound
        dep_ok = SoundnessReport("analysis", [self._ok("F1")])
        report2 = SoundnessReport("opt", [self._ok("F1")], dependencies=[dep_ok])
        assert report2.sound

    def test_elapsed_includes_dependencies(self):
        dep = SoundnessReport("analysis", [self._ok("F1", 2.0)])
        report = SoundnessReport("opt", [self._ok("F1", 1.0)], dependencies=[dep])
        assert report.elapsed_s == pytest.approx(3.0)

    def test_failed_obligations_filtered(self):
        report = SoundnessReport("x", [self._ok("F1"), self._bad("F2")])
        assert [r.obligation for r in report.failed_obligations()] == ["F2"]

    def test_summary_marks_each_obligation(self):
        report = SoundnessReport("demo", [self._ok("F1"), self._bad("F2")])
        text = report.summary()
        assert "demo: REJECTED" in text
        assert "F1: ok" in text and "F2: FAILED" in text


class TestProverResult:
    def test_proved_has_no_context_in_str(self):
        result = Result(Status.PROVED, "goal", [], Stats())
        assert str(result) == "[proved] goal"

    def test_unknown_renders_context(self):
        result = Result(Status.UNKNOWN, "goal", ["a = b  [decision@0]"], Stats())
        text = str(result)
        assert "counterexample context" in text
        assert "a = b" in text

    def test_proved_property(self):
        assert Result(Status.PROVED, "g").proved
        assert not Result(Status.UNKNOWN, "g").proved
