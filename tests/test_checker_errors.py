"""Checker error paths: untranslatable patterns are rejected gracefully,
never accepted and never crashing."""

import pytest

from repro.prover import ProverConfig
from repro.verify import SoundnessChecker
from repro.cobalt.dsl import BackwardPattern, ForwardPattern, Optimization
from repro.cobalt.guards import GLabel, GNot, GTrue
from repro.cobalt.labels import standard_registry
from repro.cobalt.patterns import VarPat, parse_pattern_stmt
from repro.cobalt.witness import EqualExceptVar, TrueWitness, VarEqConst
from repro.cobalt.patterns import ConstPat


@pytest.fixture()
def checker():
    return SoundnessChecker(config=ProverConfig(timeout_s=20))


class TestGracefulRejection:
    def test_semantic_label_without_analysis(self, checker):
        # hasConst consumed but no defining analysis registered: the pattern
        # must be rejected with an error, not accepted or crashed.
        pattern = ForwardPattern(
            name="orphanLabel",
            psi1=GLabel("hasConst", (VarPat("Y"), ConstPat("C"))),
            psi2=GTrue(),
            s=parse_pattern_stmt("X := Y"),
            s_new=parse_pattern_stmt("X := C"),
            witness=VarEqConst(VarPat("Y"), ConstPat("C")),
        )
        report = checker.check_pattern(pattern)
        assert not report.sound
        assert report.error is not None

    def test_unknown_label_rejected(self, checker):
        pattern = ForwardPattern(
            name="unknownLabel",
            psi1=GLabel("noSuchLabel", (VarPat("Y"),)),
            psi2=GTrue(),
            s=parse_pattern_stmt("X := Y"),
            s_new=parse_pattern_stmt("X := Y"),
            witness=TrueWitness(),
        )
        report = checker.check_pattern(pattern)
        assert not report.sound
        assert report.error

    def test_wildcard_in_rewrite_rejected(self, checker):
        pattern = ForwardPattern(
            name="wildcardRule",
            psi1=GTrue(),
            psi2=GTrue(),
            s=parse_pattern_stmt("X := ..."),
            s_new=parse_pattern_stmt("skip"),
            witness=TrueWitness(),
        )
        report = checker.check_pattern(pattern)
        assert not report.sound
        assert report.error

    def test_report_summary_mentions_error(self, checker):
        pattern = ForwardPattern(
            name="broken",
            psi1=GLabel("noSuchLabel", ()),
            psi2=GTrue(),
            s=parse_pattern_stmt("skip"),
            s_new=parse_pattern_stmt("skip"),
            witness=TrueWitness(),
        )
        report = checker.check_pattern(pattern)
        assert "error" in report.summary()

    def test_optimization_with_unsound_dependency(self, checker):
        # An optimization whose pure analysis fails must be rejected even if
        # its own obligations would prove.
        from repro.cobalt.dsl import PureAnalysis
        from repro.cobalt.witness import NotPointedTo

        bogus_analysis = PureAnalysis(
            name="bogusTaint",
            psi1=GTrue(),  # nothing establishes the witness
            psi2=GTrue(),
            label_name="notTainted",
            label_args=(VarPat("X"),),
            witness=NotPointedTo(VarPat("X")),
        )
        opt = Optimization(
            ForwardPattern(
                name="dependsOnBogus",
                psi1=GTrue(),
                psi2=GTrue(),
                s=parse_pattern_stmt("X := X"),
                s_new=parse_pattern_stmt("skip"),
                witness=TrueWitness(),
            ),
            analyses=(bogus_analysis,),
        )
        report = checker.check_optimization(opt)
        assert not report.sound
        assert any(not dep.sound for dep in report.dependencies)
        # The pattern itself proved; the dependency is what failed.
        assert all(r.proved for r in report.results)
