"""The worklist guard-fixpoint solver vs. the reference sweep.

The worklist engine (``CobaltEngine(..., mode="worklist")``, the default)
must be *observationally identical* to the retained reference sweep
(``mode="reference"``): same ``guard_facts``, same ``Delta`` including
order, same optimized programs — on the whole shipped suite and on
generated procedures.  These tests pin that contract, the deterministic
ordering of ``legal_transformations``, the backward-meet fix for nodes off
every exit path, the narrowed failure handling in ``run_pure_analysis``,
and the :class:`EngineStats` observability layer.
"""

import pytest

from repro.il.ast import Assign, Const, IfGoto, Return, Var, VarLhs
from repro.il.cfg import Cfg
from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.il.parser import parse_program
from repro.il.program import Procedure
from repro.cobalt.dsl import PureAnalysis
from repro.cobalt.engine import CobaltEngine, EngineStats
from repro.cobalt.guards import GLabel, GTrue
from repro.cobalt.labels import standard_registry
from repro.cobalt.patterns import VarPat, parse_pattern_stmt
from repro.opts import ALL_ANALYSES, ALL_OPTIMIZATIONS, const_prop, dae


@pytest.fixture()
def worklist():
    return CobaltEngine(standard_registry())


@pytest.fixture()
def reference():
    return CobaltEngine(standard_registry(), mode="reference")


def generated_procs(count, *, num_stmts=12, seed_base=0, **kw):
    return [
        ProgramGenerator(
            GeneratorConfig(num_stmts=num_stmts, **kw), seed=seed_base + s
        ).gen_proc()
        for s in range(count)
    ]


def canonical_facts(facts):
    """A byte string uniquely determined by a guard_facts result."""
    return "\n".join(
        ";".join(sorted(map(repr, fact))) for fact in facts
    ).encode()


# ---------------------------------------------------------------------------
# Cross-check: worklist == reference
# ---------------------------------------------------------------------------


class TestCrossCheck:
    def test_suite_guard_facts_byte_identical(self, worklist, reference):
        """Every shipped pattern computes byte-identical facts under both
        solvers, over a spread of generated programs."""
        procs = generated_procs(4, num_stmts=10) + generated_procs(
            2, num_stmts=20, seed_base=100, allow_pointers=True
        )
        for opt in ALL_OPTIMIZATIONS:
            pat = opt.pattern
            for proc in procs:
                a = worklist.guard_facts(pat.psi1, pat.psi2, pat.direction, proc)
                b = reference.guard_facts(pat.psi1, pat.psi2, pat.direction, proc)
                assert canonical_facts(a) == canonical_facts(b), (
                    f"facts diverge for {opt.name}"
                )

    def test_suite_transformations_identical(self, worklist, reference):
        """Applied-transformation lists (order included) and optimized
        procedures agree on the whole shipped optimization suite."""
        procs = generated_procs(3, num_stmts=14) + generated_procs(
            2, num_stmts=14, seed_base=50, allow_pointers=True
        )
        for opt in ALL_OPTIMIZATIONS:
            for proc in procs:
                out_wl, applied_wl = worklist.run_optimization(opt, proc)
                out_ref, applied_ref = reference.run_optimization(opt, proc)
                assert applied_wl == applied_ref, f"Delta diverges for {opt.name}"
                assert out_wl == out_ref, f"output diverges for {opt.name}"

    def test_suite_pure_analyses_identical(self, worklist, reference):
        for analysis in ALL_ANALYSES:
            for proc in generated_procs(3, num_stmts=12, allow_pointers=True):
                a = worklist.run_pure_analysis(analysis, proc)
                b = reference.run_pure_analysis(analysis, proc)
                assert a == b

    def test_iterated_and_composed_identical(self, worklist, reference):
        """The iterate loop and run_to_fixpoint — where state is derived
        across rewrites — stay identical too."""
        from dataclasses import replace

        from repro.opts import const_fold
        from repro.opts.algebraic import add_zero_right

        iterating = replace(dae, iterate=True)
        passes = [const_fold, const_prop, add_zero_right, dae]
        for proc in generated_procs(6, num_stmts=16, seed_base=7):
            out_wl, applied_wl = worklist.run_optimization(iterating, proc)
            out_ref, applied_ref = reference.run_optimization(iterating, proc)
            assert (out_wl, applied_wl) == (out_ref, applied_ref)
            fix_wl = worklist.run_to_fixpoint(passes, proc)
            fix_ref = reference.run_to_fixpoint(passes, proc)
            assert fix_wl == fix_ref

    def test_loops_and_unreachable_code(self, worklist, reference):
        """Back edges and unreachable regions — the worklist orderings'
        interesting cases."""
        proc = parse_program(
            """
            main(n) {
              decl i;
              decl s;
              decl t;
              i := 0;
              s := 2;
              t := i < n;
              if t goto 7 else 11;
              s := s + 1;
              i := i + 1;
              t := i < n;
              if t goto 7 else 11;
              s := 7;
              return s;
            }
            """
        ).proc("main")
        for opt in (const_prop, dae):
            pat = opt.pattern
            a = worklist.guard_facts(pat.psi1, pat.psi2, pat.direction, proc)
            b = reference.guard_facts(pat.psi1, pat.psi2, pat.direction, proc)
            assert canonical_facts(a) == canonical_facts(b)


# ---------------------------------------------------------------------------
# Deterministic Delta ordering (satellite)
# ---------------------------------------------------------------------------


class TestDeterministicDelta:
    def test_delta_stable_across_runs_and_engines(self):
        """Same Delta — order included — across repeated runs, across
        fresh engines, and across the two solvers, on 50+ generated
        procedures (one forward and one backward pattern)."""
        procs = generated_procs(50, num_stmts=12)
        wl1 = CobaltEngine(standard_registry())
        wl2 = CobaltEngine(standard_registry())
        ref = CobaltEngine(standard_registry(), mode="reference")
        for opt in (const_prop, dae):
            for proc in procs:
                first = wl1.legal_transformations(opt.pattern, proc)
                again = wl1.legal_transformations(opt.pattern, proc)
                fresh = wl2.legal_transformations(opt.pattern, proc)
                sweep = ref.legal_transformations(opt.pattern, proc)
                assert first == again == fresh == sweep


# ---------------------------------------------------------------------------
# Backward meet ordering (satellite regression)
# ---------------------------------------------------------------------------


class TestBackwardMeetOffPath:
    def _fall_off_proc(self):
        # 0: if n goto 1 else 2 / 1: return n / 2: a := 1  <- falls off
        # the end: no successors, not a return, off every exit path.
        return Procedure(
            "main",
            "n",
            (
                IfGoto(Var("n"), 1, 2),
                Return(Var("n")),
                Assign(VarLhs(Var("a")), Const(1)),
            ),
        )

    @pytest.mark.parametrize("mode", ["worklist", "reference"])
    def test_fall_off_the_end_gets_universe(self, mode):
        """A non-return node with no successors is off every entry-to-exit
        path, so its backward fact is the vacuously-full universe — not
        the empty region a true return contributes."""
        engine = CobaltEngine(standard_registry(), mode=mode)
        proc = self._fall_off_proc()
        psi1 = GLabel("stmt", (parse_pattern_stmt("X := C"),))
        facts = engine.guard_facts(psi1, GTrue(), "backward", proc)
        universe = frozenset().union(*(
            engine.guard_facts(psi1, GTrue(), "backward", proc)[i]
            for i in range(len(proc.stmts))
        )) or frozenset()
        # The generating node (a := 1) makes the universe non-empty.
        assert any(facts)
        # The true return still carries the empty region...
        assert facts[1] == frozenset()
        # ...while the fall-off-the-end node carries the full fact.
        assert facts[2] == universe
        assert facts[2] != frozenset()

    def test_both_engines_agree_on_fall_off_proc(self):
        proc = self._fall_off_proc()
        psi1 = GLabel("stmt", (parse_pattern_stmt("X := C"),))
        wl = CobaltEngine(standard_registry())
        ref = CobaltEngine(standard_registry(), mode="reference")
        assert canonical_facts(
            wl.guard_facts(psi1, GTrue(), "backward", proc)
        ) == canonical_facts(ref.guard_facts(psi1, GTrue(), "backward", proc))


# ---------------------------------------------------------------------------
# run_pure_analysis failure handling (satellite)
# ---------------------------------------------------------------------------


class TestPureAnalysisErrors:
    def _unbound_analysis(self):
        # psi1 = true binds nothing, so the label argument X is unbound in
        # every fact substitution: each instantiation fails benignly.
        return PureAnalysis(
            name="unboundLabel",
            psi1=GTrue(),
            psi2=GTrue(),
            label_name="notTainted",
            label_args=(VarPat("X"),),
            witness=None,
        )

    def test_unbound_label_args_are_skipped(self, worklist):
        proc = parse_program("main(n) { decl a; a := 1; return a; }").proc("main")
        labeling = worklist.run_pure_analysis(self._unbound_analysis(), proc)
        assert labeling.entries == {}

    def test_real_engine_bugs_propagate(self, worklist, monkeypatch):
        """Only the instantiation failure (unbound pattern variable) is
        swallowed; any other exception surfaces instead of silently
        dropping labels."""
        import repro.cobalt.engine as engine_mod

        def boom(term, theta):
            raise RuntimeError("engine bug")

        monkeypatch.setattr(engine_mod, "instantiate_term", boom)
        proc = parse_program("main(n) { decl a; a := 1; return a; }").proc("main")
        with pytest.raises(RuntimeError, match="engine bug"):
            worklist.run_pure_analysis(self._unbound_analysis(), proc)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestEngineStats:
    def test_counters_populated(self, worklist):
        proc = generated_procs(1, num_stmts=16)[0]
        worklist.run_optimization(const_prop, proc)
        stats = worklist.stats
        assert stats.guard_facts_calls >= 1
        assert stats.worklist_pops > 0
        assert stats.sweeps == 0
        assert stats.keeps_evals + stats.keeps_hits > 0
        assert stats.gen_evals > 0
        assert stats.guard_s > 0.0
        assert 0.0 <= stats.keeps_hit_rate <= 1.0
        assert "worklist pops" in stats.table()

    def test_reference_counts_sweeps(self, reference):
        proc = generated_procs(1, num_stmts=16)[0]
        reference.run_optimization(const_prop, proc)
        assert reference.stats.sweeps >= 2  # at least one sweep + quiescence
        assert reference.stats.worklist_pops == 0
        assert reference.stats.keeps_hits == 0

    def test_reset_returns_snapshot(self, worklist):
        proc = generated_procs(1, num_stmts=8)[0]
        worklist.run_optimization(const_prop, proc)
        snap = worklist.reset_stats()
        assert snap.guard_facts_calls >= 1
        assert worklist.stats.guard_facts_calls == 0
        assert worklist.stats == EngineStats()

    def test_memoization_pays_off_across_iteration(self):
        """The iterate loop re-analyzes only what changed: the worklist
        engine's check evaluations stay well below the reference sweep's
        on an iterated DAE chain."""
        from dataclasses import replace

        proc = parse_program(
            """
            main(n) {
              decl a;
              decl b;
              decl c;
              a := n;
              b := a;
              c := b;
              c := 1;
              return c;
            }
            """
        ).proc("main")
        iterating = replace(dae, iterate=True)
        wl = CobaltEngine(standard_registry())
        ref = CobaltEngine(standard_registry(), mode="reference")
        out_wl, applied_wl = wl.run_optimization(iterating, proc)
        out_ref, applied_ref = ref.run_optimization(iterating, proc)
        assert (out_wl, applied_wl) == (out_ref, applied_ref)
        assert len(applied_wl) == 3
        assert wl.stats.keeps_evals < ref.stats.keeps_evals
        assert wl.stats.keeps_hits > 0
        # The rewrite preserved CFG shape, so the derived states never
        # rebuilt the graph after the first construction.
        assert wl.stats.cfg_builds == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CobaltEngine(standard_registry(), mode="chaotic")

    def test_invalid_direction_rejected(self, worklist):
        proc = generated_procs(1, num_stmts=4)[0]
        with pytest.raises(ValueError):
            worklist.guard_facts(GTrue(), GTrue(), "sideways", proc)


# ---------------------------------------------------------------------------
# Traversal orders
# ---------------------------------------------------------------------------


class TestCfgOrders:
    def test_reverse_postorder_visits_before_successors(self):
        proc = parse_program(
            """
            main(n) {
              decl a;
              if n goto 2 else 3;
              a := 1;
              a := 2;
              return a;
            }
            """
        ).proc("main")
        cfg = Cfg.build(proc)
        rpo = cfg.reverse_postorder()
        assert sorted(rpo) == list(range(len(proc.stmts)))
        pos = {node: i for i, node in enumerate(rpo)}
        assert pos[0] == 0
        assert pos[1] < pos[2] and pos[1] < pos[3]
        assert pos[2] < pos[4] and pos[3] < pos[4]
        po = cfg.postorder()
        assert tuple(reversed(po)) == rpo

    def test_orders_cover_unreachable_nodes(self):
        proc = Procedure(
            "main",
            "n",
            (
                IfGoto(Var("n"), 2, 2),
                Assign(VarLhs(Var("a")), Const(5)),  # unreachable
                Return(Var("n")),
            ),
        )
        cfg = Cfg.build(proc)
        assert sorted(cfg.reverse_postorder()) == [0, 1, 2]
        assert sorted(cfg.postorder()) == [0, 1, 2]
        assert 1 not in cfg.reachable_from_entry()
