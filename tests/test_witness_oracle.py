"""Concrete witness validation: the symbolic F1/F2 proofs say that whenever
the engine's dataflow fact at a node contains a substitution, the witness
predicate holds of the execution state about to execute that node.  This
test checks the same statement on concrete traces — a semantic cross-check
of the obligation encoding, the engine, and the witness library at once."""

import pytest

from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.il.interp import Interpreter, Next
from repro.il.program import Program
from repro.cobalt.engine import CobaltEngine
from repro.cobalt.labels import Labeling, standard_registry
from repro.cobalt.patterns import thaw_subst
from repro.opts import const_prop, copy_prop, cse, taintedness_analysis

REGISTRY = standard_registry()
ENGINE = CobaltEngine(REGISTRY)


def witness_holds_along_trace(optimization, program, args, *, fuel=4000):
    """Assert the forward witness at every (state, fact) pair on the trace."""
    proc = program.main
    labeling = Labeling()
    for analysis in optimization.analyses:
        labeling = labeling.merged_with(
            ENGINE.run_pure_analysis(analysis, proc, labeling)
        )
    facts = ENGINE.guard_facts(
        optimization.pattern.psi1,
        optimization.pattern.psi2,
        "forward",
        proc,
        labeling,
    )
    interp = Interpreter(program)
    checked = 0
    for arg in args:
        state = interp.initial_state(arg)
        for _ in range(fuel):
            if state.proc_name == proc.name and state.index < len(proc.stmts):
                for frozen in facts[state.index]:
                    theta = thaw_subst(frozen)
                    assert optimization.pattern.witness.holds(state, theta, interp), (
                        f"witness {optimization.pattern.witness} failed at "
                        f"index {state.index} under {theta} (arg {arg})"
                    )
                    checked += 1
            result = interp.intra_step(state)
            if not isinstance(result, Next):
                break
            state = result.state
    return checked


class TestConstPropWitness:
    def test_straight_line(self):
        from repro.il.parser import parse_program

        program = parse_program(
            """
            main(n) {
              decl a;
              decl c;
              a := 2;
              c := a;
              c := c + n;
              return c;
            }
            """
        )
        checked = witness_holds_along_trace(const_prop, program, [0, 3])
        assert checked > 0

    @pytest.mark.parametrize("seed", range(15))
    def test_random_programs(self, seed):
        generator = ProgramGenerator(GeneratorConfig(num_stmts=10), seed=seed)
        program = Program((generator.gen_proc(),))
        witness_holds_along_trace(const_prop, program, [-1, 0, 2])


class TestOtherWitnesses:
    @pytest.mark.parametrize("seed", range(15))
    def test_copy_prop_witness(self, seed):
        generator = ProgramGenerator(GeneratorConfig(num_stmts=10), seed=seed)
        program = Program((generator.gen_proc(),))
        witness_holds_along_trace(copy_prop, program, [-1, 0, 2])

    @pytest.mark.parametrize("seed", range(15))
    def test_cse_witness(self, seed):
        generator = ProgramGenerator(GeneratorConfig(num_stmts=10), seed=seed)
        program = Program((generator.gen_proc(),))
        witness_holds_along_trace(cse, program, [-1, 0, 2])

    @pytest.mark.parametrize("seed", range(10))
    def test_taintedness_witness(self, seed):
        # The pure analysis's label means notPointedTo at the state.
        from repro.cobalt.dsl import Optimization, ForwardPattern
        from repro.cobalt.witness import NotPointedTo

        generator = ProgramGenerator(
            GeneratorConfig(num_stmts=10, allow_pointers=True), seed=seed
        )
        program = Program((generator.gen_proc(),))
        proc = program.main
        facts = ENGINE.guard_facts(
            taintedness_analysis.psi1,
            taintedness_analysis.psi2,
            "forward",
            proc,
        )
        interp = Interpreter(program)
        witness = taintedness_analysis.witness
        for arg in (0, 1):
            state = interp.initial_state(arg)
            for _ in range(4000):
                if state.index < len(proc.stmts):
                    for frozen in facts[state.index]:
                        theta = thaw_subst(frozen)
                        assert witness.holds(state, theta, interp)
                result = interp.intra_step(state)
                if not isinstance(result, Next):
                    break
                state = result.state
