"""Unit tests for the IL interpreter (state transitions, error model)."""

import pytest

from repro.il import (
    BinOp,
    Const,
    Interpreter,
    ProgramBuilder,
    Var,
    parse_program,
    run_program,
)
from repro.il.interp import ExecError, Finished, Next, Stuck


def build_simple():
    b = ProgramBuilder()
    p = b.proc("main", "n")
    p.decl("x").assign("x", BinOp("+", Var("n"), Const(1))).ret("x")
    return b.build()


class TestBasicExecution:
    def test_add_one(self):
        assert run_program(build_simple(), 41) == 42

    def test_parse_and_run(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := n * 2;
              return x;
            }
            """
        )
        assert run_program(program, 10) == 20

    def test_branch_taken(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := 0;
              if n goto 4 else 5;
              skip;
              x := 1;
              return x;
            }
            """
        )
        assert run_program(program, 1) == 1  # falls through the skip at 4
        assert run_program(program, 0) == 0  # jumps straight to the return

    def test_branch_skips_assignment(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := 7;
              if n goto 4 else 3;
              x := 9;
              return x;
            }
            """
        )
        assert run_program(program, 1) == 7
        assert run_program(program, 0) == 9

    def test_unconditional_goto_via_builder(self):
        b = ProgramBuilder()
        p = b.proc("main", "n")
        p.decl("x").assign("x", 5).goto("end")
        p.assign("x", 6)
        p.label("end").ret("x")
        assert run_program(b.build(), 0) == 5


class TestPointers:
    def test_addr_of_and_deref(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl p;
              x := 10;
              p := &x;
              x := *p;
              return x;
            }
            """
        )
        assert run_program(program, 0) == 10

    def test_store_through_pointer(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl p;
              x := 1;
              p := &x;
              *p := 99;
              return x;
            }
            """
        )
        assert run_program(program, 0) == 99

    def test_heap_allocation(self):
        program = parse_program(
            """
            main(n) {
              decl p;
              decl x;
              p := new;
              *p := n;
              x := *p;
              return x;
            }
            """
        )
        assert run_program(program, 123) == 123

    def test_deref_non_pointer_is_stuck(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl y;
              x := 5;
              y := *x;
              return y;
            }
            """
        )
        with pytest.raises(ExecError):
            run_program(program, 0)


class TestCalls:
    def test_simple_call(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := double(n);
              return x;
            }
            double(a) {
              decl t;
              t := a * 2;
              return t;
            }
            """
        )
        assert run_program(program, 21) == 42

    def test_recursion(self):
        # sum(n) = n + sum(n - 1), base case 0
        program = parse_program(
            """
            main(n) {
              decl x;
              x := sum(n);
              return x;
            }
            sum(a) {
              decl r;
              decl t;
              r := 0;
              if a goto 4 else 7;
              t := a - 1;
              r := sum(t);
              r := r + a;
              return r;
            }
            """
        )
        assert run_program(program, 5) == 15

    def test_intra_step_over_call(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := double(n);
              return x;
            }
            double(a) {
              decl t;
              t := a * 2;
              return t;
            }
            """
        )
        interp = Interpreter(program)
        state = interp.initial_state(10)
        result = interp.step(state)  # decl x
        assert isinstance(result, Next)
        result = interp.intra_step(result.state)  # the call, stepped over
        assert isinstance(result, Next)
        assert result.state.proc_name == "main"
        assert result.state.index == 2
        assert result.state.read_var("x") == 20


class TestErrorModel:
    def test_declared_var_reads_zero(self):
        # decl zero-initializes (see DESIGN.md "Error model").
        program = parse_program(
            """
            main(n) {
              decl x;
              decl y;
              y := x;
              return y;
            }
            """
        )
        assert run_program(program, 7) == 0

    def test_undeclared_read_is_stuck(self):
        program = parse_program(
            """
            main(n) {
              decl y;
              y := x;
              return y;
            }
            """
        )
        with pytest.raises(ExecError):
            run_program(program, 0)

    def test_re_executed_decl_is_stuck(self):
        # A loop back to a decl re-declares the variable: a run-time error.
        program = parse_program(
            """
            main(n) {
              decl x;
              if n goto 0 else 2;
              return x;
            }
            """
        )
        assert run_program(program, 0) == 0
        with pytest.raises(ExecError):
            run_program(program, 1)

    def test_division_by_zero_is_stuck(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := 1 / n;
              return x;
            }
            """
        )
        assert run_program(program, 2) == 0
        with pytest.raises(ExecError):
            run_program(program, 0)

    def test_branch_on_pointer_is_stuck(self):
        program = parse_program(
            """
            main(n) {
              decl p;
              p := new;
              if p goto 3 else 3;
              return n;
            }
            """
        )
        with pytest.raises(ExecError):
            run_program(program, 0)

    def test_stuck_reported_not_next(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := *n;
              return x;
            }
            """
        )
        interp = Interpreter(program)
        state = interp.initial_state(5)
        result = interp.step(state)
        assert isinstance(result, Next)
        result = interp.step(result.state)
        assert isinstance(result, Stuck)


class TestOperators:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("1 + 2", 3),
            ("5 - 9", -4),
            ("3 * 4", 12),
            ("7 / 2", 3),
            ("7 % 2", 1),
            ("neg 5", -5),
            ("not 0", 1),
            ("not 7", 0),
            ("3 == 3", 1),
            ("3 != 3", 0),
            ("2 < 3", 1),
            ("3 <= 3", 1),
            ("2 > 3", 0),
            ("3 >= 4", 0),
            ("1 && 2", 1),
            ("0 || 0", 0),
        ],
    )
    def test_operator(self, expr, expected):
        program = parse_program(
            f"""
            main(n) {{
              decl x;
              x := {expr};
              return x;
            }}
            """
        )
        assert run_program(program, 0) == expected

    def test_truncating_division_negative(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := n / 2;
              return x;
            }
            """
        )
        assert run_program(program, -7) == -3  # C-style truncation
