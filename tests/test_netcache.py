"""The networked proof-cache tier (repro.verify.netcache).

Two layers of contract:

* wire level — the daemon serves/accepts verdict objects over the batched
  JSON protocol, connections are kept alive (one TCP connection for many
  round trips), multiple upstreams shard by digest prefix;
* failure level — the client is *strictly fail-open*: a refused port, a
  wedged socket, a corrupt response, or a daemon dying mid-suite all
  degrade to cache misses, never exceptions, and the final verification
  report is byte-identical to a cache-off run.

The end-to-end tests drive real ``verify_suite`` runs through a real
daemon on a loopback socket and compare canonical reports.
"""

import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.api import ProverOptions, VerifyOptions, verify_suite
from repro.opts import const_fold, const_prop
from repro.verify.cache import SCHEMA_VERSION, ProofCache
from repro.verify.netcache import CacheClient, CacheServer
from repro.verify.cas import ShardedStore

FAST = ProverOptions(timeout_s=60.0)
MINI_SUITE = dict(analyses=[], optimizations=[const_prop, const_fold])


def _entry(proved=True, config="", backend="internal"):
    return {"proved": proved, "elapsed_s": 0.1, "context": [],
            "config": config, "backend": backend}


def _start(tmp_path, name="store"):
    server = CacheServer(tmp_path / name, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server


@pytest.fixture()
def daemon(tmp_path):
    server = _start(tmp_path)
    yield server
    server.shutdown()
    server.server_close()


class TestWireProtocol:
    def test_single_object_round_trip(self, daemon):
        client = CacheClient(daemon.url)
        assert client.get("aabbcc") is None
        assert client.put("aabbcc", _entry())
        got = client.get("aabbcc")
        assert got is not None and got["proved"] is True
        # The object landed in the daemon's sharded store.
        assert daemon.store.has("aabbcc")

    def test_batched_round_trip(self, daemon):
        client = CacheClient(daemon.url)
        entries = {f"aa{i:04x}": _entry() for i in range(8)}
        assert client.publish(entries)
        found = client.multi_get(list(entries) + ["ffffff"])
        assert set(found) == set(entries)
        assert client.stats.published == 8

    def test_connections_are_reused(self, daemon):
        client = CacheClient(daemon.url)
        for _ in range(5):
            client.multi_get(["aa1111", "bb2222"])
        client.put("cc3333", _entry())
        assert client.stats.requests == 6
        # Keep-alive: every round trip rode one TCP connection.
        assert daemon.connections == 1

    def test_two_upstreams_shard_by_digest_prefix(self, tmp_path):
        even = _start(tmp_path, "even")
        odd = _start(tmp_path, "odd")
        try:
            client = CacheClient(f"{even.url},{odd.url}")
            # 0x00 % 2 == 0, 0xff % 2 == 1: one key per shard.
            assert client.publish({"00aaaa": _entry(), "ffbbbb": _entry()})
            assert even.store.has("00aaaa") and not even.store.has("ffbbbb")
            assert odd.store.has("ffbbbb") and not odd.store.has("00aaaa")
            # Reads fan out to the right shard and merge.
            assert set(client.multi_get(["00aaaa", "ffbbbb"])) == {
                "00aaaa", "ffbbbb"}
        finally:
            for server in (even, odd):
                server.shutdown()
                server.server_close()

    def test_schema_mismatch_is_a_miss_not_poison(self, daemon):
        daemon.store.put("aa1234", _entry())
        client = CacheClient(daemon.url)
        daemon.schema = SCHEMA_VERSION + 1  # daemon now speaks v(N+1)
        assert client.multi_get(["aa1234"]) == {}
        # A 404 is an honest miss; the upstream is not marked dead.
        assert client.alive

    def test_unsafe_keys_rejected_by_daemon(self, daemon):
        client = CacheClient(daemon.url)
        assert not client.put("../escape", _entry())
        assert not (daemon.store.root / ".." / "escape.json").exists()


class _GarbageHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002
        pass

    def _garbage(self):
        length = int(self.headers.get("Content-Length", 0))
        if length:
            self.rfile.read(length)
        body = b"<html>definitely not the cache protocol</html>"
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _garbage
    do_POST = _garbage
    do_PUT = _garbage


class TestFailOpen:
    def test_refused_connection(self):
        client = CacheClient("http://127.0.0.1:1", timeout_s=0.5)
        assert client.multi_get(["aa1111"]) == {}
        assert client.get("aa1111") is None
        assert not client.publish({"aa1111": _entry()})
        assert not client.alive
        # Dead upstreams are skipped without further round trips.
        before = client.stats.requests
        assert client.multi_get(["bb2222"]) == {}
        assert client.stats.requests == before

    def test_wedged_socket_costs_one_timeout(self):
        wedge = socket.socket()
        wedge.bind(("127.0.0.1", 0))
        wedge.listen(1)  # accepts, never answers
        try:
            url = f"http://127.0.0.1:{wedge.getsockname()[1]}"
            client = CacheClient(url, timeout_s=0.3)
            start = time.monotonic()
            assert client.multi_get(["aa1111"]) == {}
            elapsed = time.monotonic() - start
            assert elapsed < 2.0  # one timeout, no retry storm
            assert not client.alive
        finally:
            wedge.close()

    def test_corrupt_response_poisons_upstream(self):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _GarbageHandler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            client = CacheClient(url, timeout_s=1.0)
            assert client.multi_get(["aa1111"]) == {}
            assert not client.alive
            assert client.stats.errors >= 1
        finally:
            server.shutdown()
            server.server_close()

    def test_prefetch_and_publish_survive_dead_remote(self, tmp_path):
        cache = ProofCache(
            tmp_path, remote=CacheClient("http://127.0.0.1:1", timeout_s=0.3)
        )
        cache.put("aa1111", proved=True, elapsed_s=0.1)
        cache.prefetch(["bb2222"])
        cache.save()  # publish fails silently; L1 still written
        assert ShardedStore(tmp_path, SCHEMA_VERSION).has("aa1111")


class TestEndToEnd:
    def _canonical_off(self):
        return verify_suite(VerifyOptions(prover=FAST), **MINI_SUITE).canonical()

    def test_warm_l2_only_replay(self, tmp_path, daemon):
        baseline = self._canonical_off()

        # Cold run: local L1 plus the daemon; fresh proofs are published.
        cold = verify_suite(
            VerifyOptions(prover=FAST, cache_dir=str(tmp_path / "l1"),
                          cache_url=daemon.url),
            **MINI_SUITE,
        )
        assert cold.canonical() == baseline
        assert cold.cache.remote.stats.published > 0
        assert daemon.store.count() == cold.cache.remote.stats.published

        # Warm run with *no* local cache directory: every verdict must come
        # from the network tier, in at most two round trips (one batched
        # suite prefetch; nothing new to publish), byte-identically.
        warm = verify_suite(
            VerifyOptions(prover=FAST, cache_url=daemon.url), **MINI_SUITE
        )
        assert warm.canonical() == baseline

        def results(report):
            for dep in report.dependencies:
                yield from results(dep)
            yield from report.results

        assert all(r.cached for rep in warm.reports for r in results(rep))
        assert warm.cache.remote.stats.requests <= 2
        assert warm.cache.remote.stats.hits > 0

    def test_l2_pulls_are_persisted_to_l1(self, tmp_path, daemon):
        verify_suite(
            VerifyOptions(prover=FAST, cache_dir=str(tmp_path / "a"),
                          cache_url=daemon.url),
            **MINI_SUITE,
        )
        # A different machine (fresh L1) warms from the network...
        verify_suite(
            VerifyOptions(prover=FAST, cache_dir=str(tmp_path / "b"),
                          cache_url=daemon.url),
            **MINI_SUITE,
        )
        # ...and read-through persists the pulled verdicts locally.
        store = ShardedStore(tmp_path / "b", SCHEMA_VERSION)
        assert store.count() > 0

    def test_daemon_killed_mid_suite_fails_open(self, tmp_path):
        baseline = self._canonical_off()
        server = _start(tmp_path)
        killed = threading.Event()

        def kill_after_first(report):
            if not killed.is_set():
                killed.set()
                server.shutdown()
                server.server_close()

        suite = verify_suite(
            VerifyOptions(prover=FAST, cache_url=server.url),
            progress=kill_after_first,
            **MINI_SUITE,
        )  # must not raise
        assert killed.is_set()
        assert suite.canonical() == baseline
