"""Tests for the Cobalt execution engine (paper section 5.2)."""

import pytest

from repro.il import parse_program, run_program
from repro.il.printer import proc_to_str
from repro.il.ast import Assign, Const, Skip, Var, VarLhs
from repro.cobalt.engine import CobaltEngine, InterferenceError
from repro.cobalt.labels import standard_registry
from repro.opts import (
    branch_fold,
    const_fold,
    const_prop,
    const_prop_pt,
    copy_prop,
    cse,
    dae,
    load_elim,
    pre_pipeline,
    self_assign_removal,
)


@pytest.fixture()
def engine():
    return CobaltEngine(standard_registry())


def main_proc(text):
    return parse_program(text).proc("main")


class TestConstProp:
    def test_simple_propagation(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              decl c;
              a := 2;
              c := a;
              return c;
            }
            """
        )
        out, applied = engine.run_optimization(const_prop, proc)
        assert len(applied) == 1
        assert out.stmt_at(3) == Assign(VarLhs(Var("c")), Const(2))

    def test_redefinition_kills_fact(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              decl c;
              a := 2;
              a := n;
              c := a;
              return c;
            }
            """
        )
        out, applied = engine.run_optimization(const_prop, proc)
        assert applied == []

    def test_join_requires_both_paths(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              decl c;
              if n goto 3 else 5;
              a := 2;
              if 1 goto 6 else 6;
              a := 2;
              c := a;
              return c;
            }
            """
        )
        out, applied = engine.run_optimization(const_prop, proc)
        assert len(applied) == 1  # both paths establish a = 2

    def test_join_with_conflicting_constants(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              decl c;
              if n goto 3 else 5;
              a := 2;
              if 1 goto 6 else 6;
              a := 3;
              c := a;
              return c;
            }
            """
        )
        out, applied = engine.run_optimization(const_prop, proc)
        assert applied == []

    def test_pointer_store_kills_conservatively(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              decl p;
              decl c;
              a := 2;
              p := &a;
              *p := 9;
              c := a;
              return c;
            }
            """
        )
        out, applied = engine.run_optimization(const_prop, proc)
        assert applied == []

    def test_pointer_aware_variant_survives_unrelated_store(self, engine):
        # p points to b, never to a, so a := 2 survives *p := 9 under the
        # pointer-aware mayDefPT but not under conservative mayDef.
        proc = main_proc(
            """
            main(n) {
              decl a;
              decl b;
              decl p;
              decl c;
              a := 2;
              b := 1;
              p := &b;
              *p := 9;
              c := a;
              return c;
            }
            """
        )
        __, applied = engine.run_optimization(const_prop, proc)
        assert applied == []
        out, applied_pt = engine.run_optimization(const_prop_pt, proc)
        assert len(applied_pt) == 1
        assert run_program(parse_program(proc_to_wrapped(out)), 0) == 2

    def test_semantics_preserved(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              decl c;
              a := 2;
              c := a;
              c := c + n;
              return c;
            }
            """
        )
        out, _ = engine.run_optimization(const_prop, proc)
        for arg in (-3, 0, 5):
            assert run_program(parse_program(proc_to_wrapped(out)), arg) == 2 + arg


def proc_to_wrapped(proc):
    return proc_to_str(proc)


class TestFolding:
    def test_const_fold(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              a := 2 + 3;
              return a;
            }
            """
        )
        out, applied = engine.run_optimization(const_fold, proc)
        assert len(applied) == 1
        assert out.stmt_at(1) == Assign(VarLhs(Var("a")), Const(5))

    def test_no_fold_division_by_zero(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              a := 1 / 0;
              return n;
            }
            """
        )
        out, applied = engine.run_optimization(const_fold, proc)
        assert applied == []

    def test_entry_statement_not_foldable(self, engine):
        # The guard quantifies over paths with at least one preceding node;
        # the entry node has the empty path, so folding never fires there.
        proc = main_proc(
            """
            main(n) {
              n := 1 + 1;
              return n;
            }
            """
        )
        out, applied = engine.run_optimization(const_fold, proc)
        assert applied == []

    def test_branch_fold(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              a := 1;
              if 1 goto 4 else 3;
              a := 2;
              return a;
            }
            """
        )
        out, applied = engine.run_optimization(branch_fold, proc)
        assert len(applied) == 1
        stmt = out.stmt_at(2)
        assert stmt.then_index == 4 and stmt.else_index == 4

    def test_fold_then_prop(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl a;
              decl b;
              a := 2 * 3;
              b := a;
              return b;
            }
            """
        )
        out, counts = engine.run_pipeline([const_fold, const_prop], proc)
        assert counts["constFold"] == 1
        assert counts["constProp"] == 1
        assert out.stmt_at(3) == Assign(VarLhs(Var("b")), Const(6))


class TestCopyPropAndCse:
    def test_copy_prop(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl y;
              decl x;
              y := n;
              x := y;
              return x;
            }
            """
        )
        out, applied = engine.run_optimization(copy_prop, proc)
        assert len(applied) == 1
        assert out.stmt_at(3) == Assign(VarLhs(Var("x")), Var("n"))

    def test_cse(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl x;
              decl y;
              x := n + 1;
              y := n + 1;
              return y;
            }
            """
        )
        out, applied = engine.run_optimization(cse, proc)
        assert len(applied) >= 1
        assert out.stmt_at(3) == Assign(VarLhs(Var("y")), Var("x"))

    def test_cse_killed_by_operand_change(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl x;
              decl y;
              x := n + 1;
              n := 0;
              y := n + 1;
              return y;
            }
            """
        )
        out, applied = engine.run_optimization(cse, proc)
        assert applied == []

    def test_load_elim(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl p;
              decl x;
              decl y;
              p := new;
              *p := n;
              x := *p;
              y := *p;
              return y;
            }
            """
        )
        out, applied = engine.run_optimization(load_elim, proc)
        assert len(applied) == 1
        assert out.stmt_at(6) == Assign(VarLhs(Var("y")), Var("x"))

    def test_load_elim_respects_intervening_direct_assignment_to_target(self, engine):
        # q points at b; a direct assignment b := 7 changes *q, so the
        # second load must not be eliminated (the section 6 bug).
        proc = main_proc(
            """
            main(n) {
              decl b;
              decl q;
              decl x;
              decl y;
              b := 1;
              q := &b;
              x := *q;
              b := 7;
              y := *q;
              return y;
            }
            """
        )
        out, applied = engine.run_optimization(load_elim, proc)
        assert applied == []


class TestDae:
    def test_removes_dead_assignment(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl x;
              x := 1;
              x := 2;
              return x;
            }
            """
        )
        out, applied = engine.run_optimization(dae, proc)
        assert len(applied) == 1
        assert isinstance(out.stmt_at(1), Skip)

    def test_removes_unreturned_value(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl x;
              decl y;
              y := n;
              x := y + 1;
              return y;
            }
            """
        )
        out, applied = engine.run_optimization(dae, proc)
        assert any(inst.index == 3 for inst in applied)

    def test_keeps_live_assignment(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl x;
              x := 1;
              x := x + n;
              return x;
            }
            """
        )
        out, applied = engine.run_optimization(dae, proc)
        assert applied == []

    def test_live_on_one_path_only(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl x;
              decl y;
              x := 5;
              if n goto 4 else 6;
              y := x;
              if 1 goto 7 else 7;
              y := 1;
              return y;
            }
            """
        )
        out, applied = engine.run_optimization(dae, proc)
        assert applied == []  # x live on the true path, y returned

    def test_iterated_dae_removes_chain(self, engine):
        # y := x is dead only after x's consumer is removed: iterate.
        from dataclasses import replace

        proc = main_proc(
            """
            main(n) {
              decl x;
              decl y;
              x := n;
              y := x;
              y := 2;
              return y;
            }
            """
        )
        iterating = replace(dae, iterate=True)
        out, applied = engine.run_optimization(iterating, proc)
        assert len(applied) == 2
        assert isinstance(out.stmt_at(2), Skip)
        assert isinstance(out.stmt_at(3), Skip)


class TestPrePipeline:
    def test_paper_example(self, engine):
        # The section 2.3 code fragment, in IL form.  The else branch
        # contains the skip that PRE duplicates x := a + b into.
        proc = main_proc(
            """
            main(n) {
              decl b;
              decl a;
              decl x;
              b := n;
              if n goto 5 else 8;
              a := 1;
              x := a + b;
              if 1 goto 9 else 9;
              skip;
              x := a + b;
              return x;
            }
            """
        )
        baseline = [run_program(parse_program(proc_to_wrapped(proc)), v) for v in (0, 1, 7)]
        out, counts = engine.run_pipeline(pre_pipeline(), proc)
        # The skip became x := a + b, and the final assignment collapsed.
        assert counts["preDuplicate"] >= 1
        assert counts["cse"] >= 1
        assert counts["selfAssignRemoval"] >= 1
        assert isinstance(out.stmt_at(9), Skip)  # x := a + b collapsed away
        assert str(out.stmt_at(8)) == "x := a + b"  # duplicated into the else leg
        transformed = [
            run_program(parse_program(proc_to_wrapped(out)), v) for v in (0, 1, 7)
        ]
        assert transformed == baseline

    def test_self_assign_removal(self, engine):
        proc = main_proc(
            """
            main(n) {
              decl x;
              x := n;
              x := x;
              return x;
            }
            """
        )
        out, applied = engine.run_optimization(self_assign_removal, proc)
        assert len(applied) == 1
        assert isinstance(out.stmt_at(2), Skip)


class TestInterference:
    def test_backward_cannot_use_forward_labels(self, engine):
        from repro.cobalt.dsl import BackwardPattern, Optimization
        from repro.cobalt.guards import GLabel, GNot
        from repro.cobalt.labels import Labeling
        from repro.cobalt.patterns import VarPat, parse_pattern_stmt
        from repro.cobalt.witness import EqualExceptVar

        bad = BackwardPattern(
            name="badBackward",
            psi1=GLabel("stmt", (parse_pattern_stmt("X := ..."),)),
            psi2=GNot(GLabel("mayUsePT", (VarPat("X"),))),
            s=parse_pattern_stmt("X := E"),
            s_new=parse_pattern_stmt("skip"),
            witness=EqualExceptVar(VarPat("X")),
        )
        proc = main_proc(
            """
            main(n) {
              decl x;
              x := 1;
              x := 2;
              return x;
            }
            """
        )
        labeling = Labeling()
        labeling.add(1, "notTainted", (Var("x"),))
        with pytest.raises(InterferenceError):
            engine.legal_transformations(bad, proc, labeling)
