"""Tests for the extended IL: pattern matching and instantiation."""

import pytest

from repro.il.ast import (
    Assign,
    BinOp,
    Call,
    Const,
    Decl,
    Deref,
    DerefLhs,
    IfGoto,
    New,
    Return,
    Skip,
    UnOp,
    Var,
    VarLhs,
)
from repro.il.parser import parse_stmt
from repro.cobalt.patterns import (
    ConstPat,
    ExprPat,
    IndexPat,
    OpPat,
    PatternError,
    VarPat,
    Wildcard,
    instantiate_stmt,
    match_stmt,
    parse_pattern_stmt,
    pattern_vars,
)


class TestPatternParser:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("skip", Skip()),
            ("decl X", Decl(VarPat("X"))),
            ("X := Y", Assign(VarLhs(VarPat("X")), VarPat("Y"))),
            ("Y := C", Assign(VarLhs(VarPat("Y")), ConstPat("C"))),
            ("X := E", Assign(VarLhs(VarPat("X")), ExprPat("E"))),
            ("*X := Z", Assign(DerefLhs(VarPat("X")), VarPat("Z"))),
            ("X := *Y", Assign(VarLhs(VarPat("X")), Deref(VarPat("Y")))),
            ("X := &Y", Assign(VarLhs(VarPat("X")), __import__("repro.il.ast", fromlist=["AddrOf"]).AddrOf(VarPat("Y")))),
            ("X := new", New(VarPat("X"))),
            ("return X", Return(VarPat("X"))),
            ("return ...", Return(Wildcard())),
            ("X := ...", Assign(VarLhs(VarPat("X")), Wildcard())),
            (
                "X := C1 OP C2",
                Assign(VarLhs(VarPat("X")), BinOp(OpPat("OP"), ConstPat("C1"), ConstPat("C2"))),
            ),
            (
                "if C goto I1 else I2",
                IfGoto(ConstPat("C"), IndexPat("I1"), IndexPat("I2")),
            ),
            ("X := P(...)", Call(VarPat("X"), Wildcard(), Wildcard())),
            ("x := y", Assign(VarLhs(Var("x")), Var("y"))),
            ("... := &X", Assign(Wildcard(), __import__("repro.il.ast", fromlist=["AddrOf"]).AddrOf(VarPat("X")))),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_pattern_stmt(text) == expected

    def test_bad_syntax_raises(self):
        with pytest.raises(PatternError):
            parse_pattern_stmt("X := := Y")

    def test_pattern_vars_collected(self):
        p = parse_pattern_stmt("X := C1 OP C2")
        assert pattern_vars(p) == {"X", "C1", "OP", "C2"}


class TestMatching:
    def test_assign_var(self):
        theta = match_stmt(parse_pattern_stmt("X := Y"), parse_stmt("a := b"))
        assert theta == {"X": Var("a"), "Y": Var("b")}

    def test_assign_const(self):
        theta = match_stmt(parse_pattern_stmt("Y := C"), parse_stmt("a := 5"))
        assert theta == {"Y": Var("a"), "C": Const(5)}

    def test_const_pattern_rejects_var(self):
        assert match_stmt(parse_pattern_stmt("Y := C"), parse_stmt("a := b")) is None

    def test_expr_pattern_matches_anything(self):
        theta = match_stmt(parse_pattern_stmt("X := E"), parse_stmt("a := b + c"))
        assert theta == {"X": Var("a"), "E": BinOp("+", Var("b"), Var("c"))}

    def test_nonlinear_pattern(self):
        p = parse_pattern_stmt("X := X")
        assert match_stmt(p, parse_stmt("a := a")) == {"X": Var("a")}
        assert match_stmt(p, parse_stmt("a := b")) is None

    def test_match_respects_existing_binding(self):
        p = parse_pattern_stmt("X := Y")
        theta = match_stmt(p, parse_stmt("a := b"), {"Y": Var("b")})
        assert theta == {"X": Var("a"), "Y": Var("b")}
        assert match_stmt(p, parse_stmt("a := c"), {"Y": Var("b")}) is None

    def test_wildcard_matches_any_rhs(self):
        p = parse_pattern_stmt("X := ...")
        assert match_stmt(p, parse_stmt("a := b + 1")) == {"X": Var("a")}
        assert match_stmt(p, parse_stmt("a := *p")) == {"X": Var("a")}
        # But not non-assignments (and not pointer stores).
        assert match_stmt(p, parse_stmt("skip")) is None
        assert match_stmt(p, parse_stmt("*a := 1")) is None

    def test_wildcard_lhs_matches_both_forms(self):
        p = parse_pattern_stmt("... := &X")
        assert match_stmt(p, parse_stmt("q := &a")) == {"X": Var("a")}
        assert match_stmt(p, parse_stmt("*q := &a")) == {"X": Var("a")}
        assert match_stmt(p, parse_stmt("q := a")) is None

    def test_deref_rhs(self):
        theta = match_stmt(parse_pattern_stmt("X := *W"), parse_stmt("a := *p"))
        assert theta == {"X": Var("a"), "W": Var("p")}

    def test_call_pattern(self):
        theta = match_stmt(parse_pattern_stmt("X := P(...)"), parse_stmt("a := foo(b)"))
        assert theta == {"X": Var("a")}

    def test_branch_pattern(self):
        theta = match_stmt(
            parse_pattern_stmt("if C goto I1 else I2"), parse_stmt("if 3 goto 1 else 2")
        )
        assert theta == {"C": Const(3), "I1": 1, "I2": 2}
        assert (
            match_stmt(parse_pattern_stmt("if C goto I1 else I2"), parse_stmt("if x goto 1 else 2"))
            is None
        )

    def test_operator_pattern(self):
        theta = match_stmt(parse_pattern_stmt("X := C1 OP C2"), parse_stmt("a := 1 + 2"))
        assert theta == {"X": Var("a"), "C1": Const(1), "OP": "+", "C2": Const(2)}

    def test_concrete_leaves(self):
        p = parse_pattern_stmt("x := Y")
        assert match_stmt(p, parse_stmt("x := b")) == {"Y": Var("b")}
        assert match_stmt(p, parse_stmt("z := b")) is None


class TestInstantiation:
    def test_roundtrip(self):
        p = parse_pattern_stmt("X := Y")
        s = parse_stmt("a := b")
        theta = match_stmt(p, s)
        assert instantiate_stmt(p, theta) == s

    def test_rewrite(self):
        theta = {"X": Var("a"), "C": Const(7)}
        out = instantiate_stmt(parse_pattern_stmt("X := C"), theta)
        assert out == parse_stmt("a := 7")

    def test_unbound_raises(self):
        with pytest.raises(PatternError):
            instantiate_stmt(parse_pattern_stmt("X := C"), {"X": Var("a")})

    def test_wrong_sort_raises(self):
        with pytest.raises(PatternError):
            instantiate_stmt(parse_pattern_stmt("X := C"), {"X": Var("a"), "C": Var("b")})

    def test_skip_instantiates_to_itself(self):
        assert instantiate_stmt(Skip(), {}) == Skip()

    def test_branch_instantiation(self):
        theta = {"C": Const(0), "I1": 4, "I2": 9}
        out = instantiate_stmt(parse_pattern_stmt("if C goto I1 else I2"), theta)
        assert out == IfGoto(Const(0), 4, 9)

    @pytest.mark.parametrize(
        "pattern,stmt",
        [
            ("X := Y", "a := b"),
            ("Y := C", "v := 42"),
            ("X := E", "r := p + q"),
            ("*X := Z", "*p := v"),
            ("X := *Y", "v := *p"),
            ("X := new", "p := new"),
            ("decl X", "decl t"),
            ("return X", "return r"),
            ("X := C1 OP C2", "a := 6 * 7"),
            ("if C goto I1 else I2", "if 1 goto 2 else 3"),
        ],
    )
    def test_match_then_instantiate_is_identity(self, pattern, stmt):
        p = parse_pattern_stmt(pattern)
        s = parse_stmt(stmt)
        theta = match_stmt(p, s)
        assert theta is not None
        assert instantiate_stmt(p, theta) == s
