"""Tests for witness inference (paper section 7, future work).

The heuristics must reconstruct the hand-written witnesses of the shipped
suite — and since every guess is verified, inference can never smuggle in
an unsound optimization."""

from dataclasses import replace

import pytest

from repro.prover import ProverConfig
from repro.verify import SoundnessChecker
from repro.verify.infer import candidate_witnesses, infer_and_check
from repro.cobalt.witness import (
    EqualExceptVar,
    NotPointedTo,
    TrueWitness,
    VarEqConst,
    VarEqExpr,
    VarEqVar,
)
from repro.opts import const_prop, copy_prop, cse, dae, pre_duplicate, self_assign_removal
from repro.opts.buggy import const_prop_no_pointers


@pytest.fixture(scope="module")
def checker():
    return SoundnessChecker(config=ProverConfig(timeout_s=90))


class TestCandidateGeneration:
    def test_const_prop_guesses_strongest_postcondition(self):
        candidates = candidate_witnesses(const_prop.pattern)
        assert isinstance(candidates[0], VarEqConst)

    def test_copy_prop_guesses_var_equality(self):
        candidates = candidate_witnesses(copy_prop.pattern)
        assert isinstance(candidates[0], VarEqVar)

    def test_cse_guesses_expr_equality(self):
        candidates = candidate_witnesses(cse.pattern)
        assert isinstance(candidates[0], VarEqExpr)

    def test_dae_guesses_equal_except(self):
        candidates = candidate_witnesses(dae.pattern)
        assert isinstance(candidates[0], EqualExceptVar)

    def test_trivial_always_last_resort(self):
        for pattern in (const_prop.pattern, dae.pattern):
            assert isinstance(candidate_witnesses(pattern)[-1], TrueWitness)


class TestInferAndCheck:
    def test_const_prop_without_witness(self, checker):
        stripped = replace(const_prop.pattern, witness=TrueWitness())
        inferred, trail = infer_and_check(stripped, checker)
        assert inferred is not None
        assert isinstance(inferred.witness, VarEqConst)
        assert trail[0][1].sound

    def test_copy_prop_without_witness(self, checker):
        stripped = replace(copy_prop.pattern, witness=TrueWitness())
        inferred, _ = infer_and_check(stripped, checker)
        assert inferred is not None
        assert isinstance(inferred.witness, VarEqVar)

    def test_dae_without_witness(self, checker):
        stripped = replace(dae.pattern, witness=TrueWitness())
        inferred, _ = infer_and_check(stripped, checker)
        assert inferred is not None
        assert isinstance(inferred.witness, EqualExceptVar)

    def test_pre_duplicate_without_witness(self, checker):
        stripped = replace(pre_duplicate.pattern, witness=TrueWitness())
        inferred, _ = infer_and_check(stripped, checker)
        assert inferred is not None
        assert isinstance(inferred.witness, EqualExceptVar)

    def test_trivial_guard_gets_trivial_witness(self, checker):
        inferred, _ = infer_and_check(self_assign_removal.pattern, checker)
        assert inferred is not None
        assert isinstance(inferred.witness, TrueWitness)

    def test_unsound_pattern_never_proves(self, checker):
        # No witness can rescue a genuinely unsound optimization.
        inferred, trail = infer_and_check(const_prop_no_pointers.pattern, checker)
        assert inferred is None
        assert all(not report.sound for _, report in trail)
