"""Structural tests: Program/Procedure validation, indexing, and CFGs."""

import pytest

from repro.il.ast import Assign, Const, IfGoto, Return, Skip, Var, VarLhs
from repro.il.cfg import Cfg
from repro.il.parser import ParseError, parse_program, parse_proc
from repro.il.printer import proc_to_str, program_to_str
from repro.il.program import MAIN, Procedure, Program, ProgramError


def proc(text):
    return parse_program(text).proc("main")


class TestValidation:
    def test_missing_main(self):
        with pytest.raises(ProgramError):
            parse_program("foo(x) { return x; }")

    def test_last_statement_must_return(self):
        with pytest.raises(ProgramError):
            parse_program("main(n) { n := 1; }")

    def test_branch_target_bounds(self):
        with pytest.raises(ProgramError):
            parse_program("main(n) { if n goto 9 else 0; return n; }")

    def test_duplicate_decl(self):
        with pytest.raises(ProgramError):
            parse_program("main(n) { decl x; decl x; return n; }")

    def test_param_shadowing(self):
        with pytest.raises(ProgramError):
            parse_program("main(n) { decl n; return n; }")

    def test_undefined_callee(self):
        with pytest.raises(ProgramError):
            parse_program("main(n) { decl x; x := nosuch(n); return x; }")

    def test_duplicate_proc_names(self):
        with pytest.raises(ProgramError):
            parse_program("main(n) { return n; } main(n) { return n; }")

    def test_stmt_at_bounds(self):
        p = proc("main(n) { return n; }")
        with pytest.raises(ProgramError):
            p.stmt_at(5)


class TestAccessors:
    def test_indices_and_exits(self):
        p = proc(
            """
            main(n) {
              decl x;
              if n goto 2 else 3;
              return n;
              return x;
            }
            """
        )
        assert list(p.indices()) == [0, 1, 2, 3]
        assert p.exit_indices() == (2, 3)

    def test_local_vars(self):
        p = proc("main(n) { decl a; decl b; return a; }")
        assert p.local_vars() == ("n", "a", "b")

    def test_constants(self):
        p = proc("main(n) { decl a; a := 1 + 2; if 7 goto 3 else 3; return a; }")
        assert p.constants() == frozenset({1, 2, 7})

    def test_with_stmt_replaces_one(self):
        p = proc("main(n) { decl a; a := 1; return a; }")
        q = p.with_stmt(1, Skip())
        assert isinstance(q.stmt_at(1), Skip)
        assert q.stmt_at(0) == p.stmt_at(0)
        assert isinstance(p.stmt_at(1), Assign)  # original untouched

    def test_with_proc_replaces(self):
        program = parse_program("main(n) { return n; } foo(x) { return x; }")
        new_main = Procedure(MAIN, "n", (Skip(), Return(Var("n"))))
        out = program.with_proc(new_main)
        assert len(out.main.stmts) == 2
        assert out.proc("foo") == program.proc("foo")


class TestCfg:
    def test_straight_line(self):
        cfg = Cfg.build(proc("main(n) { decl a; a := 1; return a; }"))
        assert cfg.successors(0) == (1,)
        assert cfg.successors(1) == (2,)
        assert cfg.successors(2) == ()
        assert cfg.predecessors(2) == (1,)

    def test_branch_edges(self):
        cfg = Cfg.build(
            proc("main(n) { if n goto 1 else 2; return n; return n; }")
        )
        assert cfg.successors(0) == (1, 2)
        assert cfg.predecessors(1) == (0,)
        assert cfg.predecessors(2) == (0,)

    def test_self_loop(self):
        cfg = Cfg.build(proc("main(n) { if n goto 0 else 1; return n; }"))
        assert 0 in cfg.successors(0)
        assert 0 in cfg.predecessors(0)

    def test_reachability(self):
        cfg = Cfg.build(
            proc(
                """
                main(n) {
                  if 1 goto 2 else 2;
                  n := 9;
                  return n;
                }
                """
            )
        )
        assert cfg.reachable_from_entry() == frozenset({0, 2})
        assert cfg.reaching_exit() == frozenset({0, 1, 2})

    def test_paths_enumeration(self):
        cfg = Cfg.build(
            proc(
                """
                main(n) {
                  if n goto 1 else 2;
                  return n;
                  return n;
                }
                """
            )
        )
        paths = cfg.paths_to(1, max_len=10)
        assert paths == [(0, 1)]
        paths_out = cfg.paths_from(0, max_len=10)
        assert sorted(paths_out) == [(0, 1), (0, 2)]


class TestPrinterRoundTrip:
    def test_indices_comment_mode(self):
        p = proc("main(n) { decl a; return n; }")
        text = proc_to_str(p, indices=True)
        assert "/*   0 */" in text

    def test_multi_proc_roundtrip(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := helper(n);
              return x;
            }
            helper(a) {
              decl t;
              t := a * a;
              return t;
            }
            """
        )
        assert parse_program(program_to_str(program)) == program


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "main(n) { return n }",  # missing semicolon
            "main n { return n; }",  # missing parens
            "main(n) { x ::= 1; return n; }",
            "main(n) { @ ; return n; }",
            "main(n) { decl 5; return n; }",
        ],
    )
    def test_bad_syntax(self, text):
        with pytest.raises(ParseError):
            parse_program(text)

    def test_error_carries_location(self):
        try:
            parse_program("main(n) {\n  decl 5;\n  return n;\n}")
        except ParseError as e:
            assert "line 2" in str(e)
        else:
            pytest.fail("expected ParseError")
