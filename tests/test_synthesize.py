"""Tests for counterexample-program synthesis (paper section 7).

For genuinely unsound optimizations the search must produce a concrete,
small miscompilation; for sound ones it must come up empty."""

import pytest

from repro.il import run_program
from repro.il.interp import ExecError, OutOfFuel
from repro.verify.synthesize import find_counterexample
from repro.opts import const_prop, dae
from repro.opts.buggy import (
    assign_removal_overbroad,
    const_prop_no_pointers,
    copy_prop_no_target_check,
    dae_no_use_check,
)


def assert_real(counterexample):
    """Re-validate the counterexample independently of the search."""
    assert counterexample is not None
    value = run_program(counterexample.original, counterexample.argument)
    assert value == counterexample.original_value
    try:
        after = run_program(counterexample.transformed, counterexample.argument)
    except (ExecError, OutOfFuel):
        return  # stuck/divergent transformed run is a behaviour change too
    assert after != value


class TestUnsoundOptimizations:
    def test_overbroad_removal(self):
        found = find_counterexample(assign_removal_overbroad, seeds=range(60))
        assert_real(found)

    def test_dae_without_use_check(self):
        found = find_counterexample(dae_no_use_check, seeds=range(150))
        assert_real(found)

    def test_copy_prop_without_target_check(self):
        found = find_counterexample(copy_prop_no_target_check, seeds=range(200))
        assert_real(found)

    def test_const_prop_ignoring_pointers(self):
        found = find_counterexample(const_prop_no_pointers, seeds=range(300))
        assert_real(found)

    def test_counterexamples_are_small(self):
        found = find_counterexample(assign_removal_overbroad, seeds=range(60))
        assert found is not None
        # Shrinking should get well below the generator's raw program size.
        assert len(found.original.main.stmts) <= 8

    def test_describe_is_readable(self):
        found = find_counterexample(assign_removal_overbroad, seeds=range(60))
        text = found.describe()
        assert "original" in text and "transformed" in text


class TestContextGuidance:
    def test_hints_extracted_from_context(self):
        from repro.verify.synthesize import hints_from_context

        context = [
            "lhsKind(assgnLhs(stmtAt(PI, sIndex(ETA)))) = LK_DEREF  [decision@3]",
            "NPT(sStore(ETA), select(sEnv(ETA), pid_X))  [unit]",
        ]
        hints = hints_from_context(context)
        assert hints and hints[0].startswith(("p :=", "*p", "a := *p", "b := *p"))

    def test_context_guided_search_finds_pointer_bug(self):
        # Feed the actual failed-obligation context into the search.
        from repro.prover import ProverConfig
        from repro.verify import SoundnessChecker
        from repro.opts.buggy import load_elim_direct_assign

        checker = SoundnessChecker(config=ProverConfig(timeout_s=60))
        report = checker.check_optimization(load_elim_direct_assign)
        assert not report.sound
        context = report.failed_obligations()[0].context
        found = find_counterexample(
            load_elim_direct_assign, seeds=range(10), context=context
        )
        assert_real(found)

    def test_empty_context_is_fine(self):
        from repro.verify.synthesize import hints_from_context

        assert hints_from_context([]) == []


class TestSoundOptimizations:
    @pytest.mark.parametrize("opt", [const_prop, dae], ids=lambda o: o.name)
    def test_no_counterexample_found(self, opt):
        found = find_counterexample(
            opt, seeds=range(40), shrink=False, max_template_body=3
        )
        assert found is None
