"""Tests for counterexample-program synthesis (paper section 7).

For genuinely unsound optimizations the search must produce a concrete,
small miscompilation; for sound ones it must come up empty."""

import pytest

from repro.il import run_program
from repro.il.interp import ExecError, OutOfFuel
from repro.verify.synthesize import find_counterexample
from repro.cobalt.dsl import Optimization
from repro.opts import const_prop, dae
from repro.opts.buggy import (
    assign_removal_overbroad,
    const_prop_no_pointers,
    copy_prop_no_target_check,
    dae_no_use_check,
)


def assert_real(counterexample):
    """Re-validate the counterexample independently of the search."""
    assert counterexample is not None
    value = run_program(counterexample.original, counterexample.argument)
    assert value == counterexample.original_value
    try:
        after = run_program(counterexample.transformed, counterexample.argument)
    except (ExecError, OutOfFuel):
        return  # stuck/divergent transformed run is a behaviour change too
    assert after != value


class TestUnsoundOptimizations:
    def test_overbroad_removal(self):
        found = find_counterexample(assign_removal_overbroad, seeds=range(60))
        assert_real(found)

    def test_dae_without_use_check(self):
        found = find_counterexample(dae_no_use_check, seeds=range(150))
        assert_real(found)

    def test_copy_prop_without_target_check(self):
        found = find_counterexample(copy_prop_no_target_check, seeds=range(200))
        assert_real(found)

    def test_const_prop_ignoring_pointers(self):
        found = find_counterexample(const_prop_no_pointers, seeds=range(300))
        assert_real(found)

    def test_counterexamples_are_small(self):
        found = find_counterexample(assign_removal_overbroad, seeds=range(60))
        assert found is not None
        # Shrinking should get well below the generator's raw program size.
        assert len(found.original.main.stmts) <= 8

    def test_describe_is_readable(self):
        found = find_counterexample(assign_removal_overbroad, seeds=range(60))
        text = found.describe()
        assert "original" in text and "transformed" in text


class TestContextGuidance:
    def test_hints_extracted_from_context(self):
        from repro.verify.synthesize import hints_from_context

        context = [
            "lhsKind(assgnLhs(stmtAt(PI, sIndex(ETA)))) = LK_DEREF  [decision@3]",
            "NPT(sStore(ETA), select(sEnv(ETA), pid_X))  [unit]",
        ]
        hints = hints_from_context(context)
        assert hints and hints[0].startswith(("p :=", "*p", "a := *p", "b := *p"))

    def test_context_guided_search_finds_pointer_bug(self):
        # Feed the actual failed-obligation context into the search.
        from repro.prover import ProverConfig
        from repro.verify import SoundnessChecker
        from repro.opts.buggy import load_elim_direct_assign

        checker = SoundnessChecker(config=ProverConfig(timeout_s=60))
        report = checker.check_optimization(load_elim_direct_assign)
        assert not report.sound
        context = report.failed_obligations()[0].context
        found = find_counterexample(
            load_elim_direct_assign, seeds=range(10), context=context
        )
        assert_real(found)

    def test_empty_context_is_fine(self):
        from repro.verify.synthesize import hints_from_context

        assert hints_from_context([]) == []


class TestSoundOptimizations:
    @pytest.mark.parametrize("opt", [const_prop, dae], ids=lambda o: o.name)
    def test_no_counterexample_found(self, opt):
        found = find_counterexample(
            opt, seeds=range(40), shrink=False, max_template_body=3
        )
        assert found is None


class TestMalformedRules:
    """Machine-minted candidate rules can be arbitrarily broken; the search
    must reject them with a PatternError/ProgramError naming the rule —
    never a bare traceback from the rewriting machinery."""

    def _search(self, rule):
        return find_counterexample(
            Optimization(rule), seeds=range(2), max_template_body=2
        )

    def test_unbound_metavariable_names_the_rule(self):
        from repro.cobalt.guards import GTrue
        from repro.cobalt.patterns import PatternError, parse_pattern_stmt
        from repro.cobalt.witness import TrueWitness
        from repro.cobalt.dsl import ForwardPattern

        bad = ForwardPattern(
            name="bad_unbound",
            psi1=GTrue(),
            psi2=GTrue(),
            s=parse_pattern_stmt("X := Y"),
            s_new=parse_pattern_stmt("X := Q"),  # Q is never bound
            witness=TrueWitness(),
        )
        with pytest.raises(PatternError) as excinfo:
            self._search(bad)
        message = str(excinfo.value)
        assert "while testing candidate rule" in message
        assert "bad_unbound" in message
        assert "Q" in message  # the unbound metavariable is named

    def test_nonsense_guard_object_becomes_pattern_error(self):
        from repro.cobalt.patterns import PatternError, parse_pattern_stmt
        from repro.cobalt.witness import TrueWitness
        from repro.cobalt.dsl import ForwardPattern

        bad = ForwardPattern(
            name="bad_guard",
            psi1="this is not a guard",  # type: ignore[arg-type]
            psi2="neither is this",  # type: ignore[arg-type]
            s=parse_pattern_stmt("X := Y"),
            s_new=parse_pattern_stmt("skip"),
            witness=TrueWitness(),
        )
        with pytest.raises(PatternError) as excinfo:
            self._search(bad)
        message = str(excinfo.value)
        assert "while testing candidate rule" in message
        assert "bad_guard" in message

    def test_rule_text_renders_guards_and_witness(self):
        from repro.verify.synthesize import rule_text
        from repro.opts.buggy import dae_no_use_check

        text = rule_text(dae_no_use_check.pattern)
        assert dae_no_use_check.pattern.name in text
        assert "=>" in text
        assert "witness" in text

    def test_wrapping_does_not_stack_in_nested_phases(self):
        from repro.cobalt.patterns import PatternError, parse_pattern_stmt
        from repro.cobalt.witness import TrueWitness
        from repro.cobalt.dsl import ForwardPattern

        bad = ForwardPattern(
            name="bad_once",
            psi1="still not a guard",  # type: ignore[arg-type]
            psi2="nope",  # type: ignore[arg-type]
            s=parse_pattern_stmt("X := Y"),
            s_new=parse_pattern_stmt("skip"),
            witness=TrueWitness(),
        )
        with pytest.raises(PatternError) as excinfo:
            self._search(bad)
        assert str(excinfo.value).count("while testing candidate rule") == 1
