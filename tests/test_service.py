"""The verification daemon (docs/SERVICE.md).

Covers, bottom-up: the rate limiter's deterministic 429 path (injected
clock), the obligation broker's cross-request batching and in-flight
dedup, the job queue's validation/rejection paths, and the asyncio HTTP
server end to end — concurrent clients getting byte-identical reports to
a serial local ``verify_suite``, malformed/oversized bodies answered
without disturbing the loop, and a client disconnecting mid-stream
cancelling only its own stream.
"""

import asyncio
import http.client
import json
import socket
import threading
import time

import pytest

from repro.api import ProverOptions, VerifyOptions, verify_suite
from repro.cobalt.labels import standard_registry
from repro.prover import ProverConfig
from repro.prover.backends.base import BackendSpec
from repro.service import (
    Job,
    ObligationBroker,
    RateLimiter,
    ServiceOverloadedError,
    ServiceServer,
    TokenBucket,
    VerificationService,
)
from repro.service.wire import WireError, envelope
from repro.verify.checker import ObligationResult
from repro.verify.obligations import ObligationBuilder

CONST_PROP = """
forward optimization constProp {
  stmt(Y := C)
  followed by
  !mayDef(Y)
  until
  X := Y  =>  X := C
  with witness
  eta(Y) == C
}
"""

FAST = VerifyOptions(prover=ProverOptions(timeout_s=60.0))


# ---------------------------------------------------------------------------
# Rate limiting
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.take() == (True, 0.0)
        assert bucket.take() == (True, 0.0)
        allowed, retry = bucket.take()
        assert not allowed
        assert retry == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.take()[0]
        assert not bucket.take()[0]
        clock.now += 0.5  # 2 tokens/s * 0.5s = 1 token
        assert bucket.take()[0]

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
        assert bucket.take()[0]
        allowed, retry = bucket.take()
        assert not allowed
        assert retry == float("inf")


class TestRateLimiter:
    def test_keys_are_independent(self):
        limiter = RateLimiter(rate=0.0, burst=1.0, clock=FakeClock())
        assert limiter.check("a")[0]
        assert limiter.check("b")[0]
        assert not limiter.check("a")[0]
        assert limiter.stats.allowed == 2
        assert limiter.stats.limited == 1

    def test_burst_zero_disables(self):
        limiter = RateLimiter(rate=0.0, burst=0.0, clock=FakeClock())
        assert not limiter.enabled
        for _ in range(10):
            assert limiter.check("a")[0]

    def test_key_eviction_is_bounded(self):
        limiter = RateLimiter(rate=0.0, burst=1.0, clock=FakeClock())
        limiter.MAX_KEYS = 4
        for i in range(10):
            limiter.check(f"client-{i}")
        assert len(limiter._buckets) <= 4


# ---------------------------------------------------------------------------
# The obligation broker
# ---------------------------------------------------------------------------


class FakeBackend:
    """Deterministic stand-in backend: records calls, proves everything."""

    def __init__(self) -> None:
        self.calls = []
        self.lock = threading.Lock()

    def discharge(self, owner, obligation):
        with self.lock:
            self.calls.append((owner, obligation.name))
        return ObligationResult(obligation.name, True, 0.01, [])

    def identity(self) -> str:
        return "fake"


def _obligations():
    from repro.opts import const_fold

    return ObligationBuilder(standard_registry()).forward_obligations(
        const_fold.pattern
    )


class TestBroker:
    def test_results_in_submission_order(self):
        broker = ObligationBroker(jobs=1, batch_window_s=0.0)
        try:
            obs = _obligations()
            futures = broker.submit(
                "job-1", "constFold", obs,
                config=ProverConfig(), spec=BackendSpec(),
                backend=FakeBackend(), axiom_digest="d", timeout_s=None,
            )
            names = [f.result(timeout=10) for f in futures]
            assert [r.obligation for r in names] == [ob.name for ob in obs]
        finally:
            broker.close()

    def test_cross_job_dedup_and_shared_dispatch(self):
        broker = ObligationBroker(jobs=1, batch_window_s=0.3)
        backend = FakeBackend()
        try:
            obs = _obligations()
            kwargs = dict(
                config=ProverConfig(), spec=BackendSpec(),
                backend=backend, axiom_digest="d", timeout_s=None,
            )
            futures_a = broker.submit("job-a", "constFold", obs, **kwargs)
            futures_b = broker.submit("job-b", "constFold", obs, **kwargs)
            results_a = [f.result(timeout=10) for f in futures_a]
            results_b = [f.result(timeout=10) for f in futures_b]
            # Both jobs see the full verdict list under their own names...
            assert [r.obligation for r in results_a] == [ob.name for ob in obs]
            assert [r.obligation for r in results_b] == [ob.name for ob in obs]
            assert all(r.proved for r in results_a + results_b)
            # ...but the backend ran each distinct obligation only once
            # (constFold F2/F3 share goal content and thus a key).
            from repro.verify.cache import obligation_key

            distinct = len({obligation_key(ob, "d") for ob in obs})
            assert len(backend.calls) == distinct
            stats = broker.stats
            assert stats.dispatches == 1
            assert stats.shared_dispatches == 1
            assert stats.coalesced == 2 * len(obs) - distinct
        finally:
            broker.close()

    def test_different_timeouts_never_share_a_dispatch(self):
        # _discharge applies the lead's hard timeout to its whole group, so
        # only same-timeout work may coalesce: a job under a tiny timeout
        # must never have another job's obligations killed under it.
        broker = ObligationBroker(jobs=1, batch_window_s=0.3)
        backend = FakeBackend()
        try:
            obs = _obligations()
            kwargs = dict(
                config=ProverConfig(), spec=BackendSpec(),
                backend=backend, axiom_digest="d",
            )
            futures_a = broker.submit(
                "job-a", "constFold", obs, timeout_s=None, **kwargs
            )
            futures_b = broker.submit(
                "job-b", "constFold", obs, timeout_s=0.001, **kwargs
            )
            for f in futures_a + futures_b:
                assert f.result(timeout=10).proved
            from repro.verify.cache import obligation_key

            distinct = len({obligation_key(ob, "d") for ob in obs})
            stats = broker.stats
            assert stats.dispatches == 2
            assert stats.shared_dispatches == 0
            # each distinct obligation ran once *per timeout group*
            assert len(backend.calls) == 2 * distinct
        finally:
            broker.close()

    def test_closed_broker_refuses_work(self):
        broker = ObligationBroker(jobs=1, batch_window_s=0.0)
        broker.close()
        with pytest.raises(RuntimeError, match="closed"):
            broker.submit(
                "job", "x", _obligations(),
                config=ProverConfig(), spec=BackendSpec(),
                backend=FakeBackend(), axiom_digest="d", timeout_s=None,
            )


# ---------------------------------------------------------------------------
# The service (no HTTP)
# ---------------------------------------------------------------------------


@pytest.fixture()
def service():
    svc = VerificationService(FAST, max_concurrent_jobs=4,
                              batch_window_s=0.02)
    yield svc
    svc.shutdown()


class TestVerificationService:
    def test_source_job_matches_local_run(self, service):
        job = service.submit(envelope("job-request", {"source": CONST_PROP}))
        assert job.wait(timeout=120)
        assert job.status == "done"
        got = job.result["canonical"]

        from repro.cli import parse_blocks
        from repro.cobalt.dsl import Optimization

        items = parse_blocks(CONST_PROP)
        local = verify_suite(
            FAST,
            analyses=[],
            optimizations=[
                i if isinstance(i, Optimization) else Optimization(i)
                for i in items
            ],
        )
        assert got == local.canonical()

    def test_bad_envelope_kind_is_refused(self, service):
        with pytest.raises(WireError, match="job-request"):
            service.submit(envelope("suite-report", {}))

    def test_forbidden_options_are_refused(self, service):
        body = envelope("job-request", {
            "source": CONST_PROP,
            "options": {"solver_cmd": ["evil"]},
        })
        with pytest.raises(WireError, match="solver_cmd"):
            service.submit(body)

    def test_unknown_suite_names_are_refused(self, service):
        body = envelope("job-request", {"optimizations": ["noSuchPass"]})
        with pytest.raises(WireError, match="noSuchPass"):
            service.submit(body)

    def test_unparsable_source_is_refused(self, service):
        body = envelope("job-request", {"source": "forward optimization x {"})
        with pytest.raises(WireError, match="unparsable"):
            service.submit(body)

    def test_client_prover_options_are_honored(self, service):
        body = envelope("job-request", {
            "source": CONST_PROP,
            "options": {
                "prover": envelope("prover-options", {"timeout_s": 33.0}),
            },
        })
        job = service.submit(body)
        assert job.wait(timeout=120)
        assert job.status == "done"

    def test_stats_counters_move(self, service):
        job = service.submit(envelope("job-request", {"source": CONST_PROP}))
        job.wait(timeout=120)
        stats = service.stats_wire()
        assert stats["jobs"]["submitted"] >= 1
        assert stats["jobs"]["completed"] >= 1
        assert stats["broker"]["enqueued"] >= 1
        assert stats["cache"]["stores"] >= 1

    def test_live_job_bound_refuses_submissions(self):
        svc = VerificationService(FAST, max_live_jobs=1)
        try:
            # a live (unfinished) job occupies the only slot
            svc._jobs["blocker"] = Job("blocker", "suite")
            with pytest.raises(ServiceOverloadedError):
                svc.submit(envelope("job-request", {"optimizations": []}))
        finally:
            del svc._jobs["blocker"]
            svc.shutdown()

    def test_warm_network_replay_is_one_round_trip(self, tmp_path):
        # Populate a store locally, serve it over the network tier, and
        # point a daemon with NO local cache at it: the whole job must
        # replay from ONE batched multi-GET (the verify_suite prefetch),
        # byte-identical, with zero broker dispatches.
        from dataclasses import replace

        from repro.cli import parse_blocks
        from repro.cobalt.dsl import Optimization
        from repro.verify.netcache import CacheServer

        items = [i if isinstance(i, Optimization) else Optimization(i)
                 for i in parse_blocks(CONST_PROP)]
        local = verify_suite(
            replace(FAST, cache_dir=str(tmp_path / "store")),
            analyses=[], optimizations=items,
        )
        local.cache.save()

        server = CacheServer(tmp_path / "store", port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        svc = VerificationService(
            replace(FAST, cache_url=server.url), batch_window_s=0.02
        )
        try:
            job = svc.submit(
                envelope("job-request", {"source": CONST_PROP})
            )
            assert job.wait(timeout=120)
            assert job.status == "done"
            assert job.result["canonical"] == local.canonical()
            assert svc.cache.remote is not None
            assert svc.cache.remote.stats.requests == 1
            assert svc.broker.stats.dispatches == 0
            assert svc.cache.stats.hits >= 1
        finally:
            svc.shutdown()
            server.shutdown()
            server.server_close()


# ---------------------------------------------------------------------------
# The HTTP server
# ---------------------------------------------------------------------------


class DaemonFixture:
    def __init__(self, server: ServiceServer) -> None:
        self.server = server
        self.thread: threading.Thread = None  # type: ignore[assignment]
        self.loop = None

    @property
    def port(self) -> int:
        return self.server.port

    def request(self, method, path, body=None, headers=None, timeout=120.0):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            conn.close()

    def post_job(self, payload, headers=None, timeout=120.0):
        body = json.dumps(envelope("job-request", payload)).encode()
        return self.request("POST", "/v1/jobs", body=body, headers=headers,
                            timeout=timeout)


def _start_daemon(**kwargs):
    server = ServiceServer(
        kwargs.pop("options", FAST), port=0,
        batch_window_s=kwargs.pop("batch_window_s", 0.02), **kwargs
    )
    fixture = DaemonFixture(server)
    started = threading.Event()

    def run():
        async def main():
            await server.start()
            started.set()
            await server.serve_forever()
        asyncio.run(main())

    fixture.thread = threading.Thread(target=run, daemon=True)
    fixture.thread.start()
    assert started.wait(10), "daemon failed to start"
    return fixture


@pytest.fixture()
def daemon():
    fixture = _start_daemon()
    yield fixture
    fixture.server.request_stop()
    fixture.thread.join(timeout=30)


class TestHTTP:
    def test_healthz(self, daemon):
        status, _, body = daemon.request("GET", "/v1/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True

    def test_unknown_route_is_404(self, daemon):
        status, _, _ = daemon.request("GET", "/v1/nope")
        assert status == 404

    def test_wrong_method_is_405(self, daemon):
        status, _, _ = daemon.request("POST", "/v1/healthz", body=b"{}")
        assert status == 405

    def test_unknown_job_is_404(self, daemon):
        status, _, _ = daemon.request("GET", "/v1/jobs/ffff")
        assert status == 404

    def test_malformed_json_is_400_and_loop_survives(self, daemon):
        status, _, body = daemon.request("POST", "/v1/jobs", body=b"{nope")
        assert status == 400
        assert "malformed JSON" in json.loads(body)["error"]
        # the loop is still serving
        assert daemon.request("GET", "/v1/healthz")[0] == 200

    def test_post_without_length_is_411(self, daemon):
        # http.client always sets Content-Length; speak raw bytes instead.
        with socket.create_connection(("127.0.0.1", daemon.port), 10) as sock:
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n")
            response = sock.recv(4096)
        assert b"411" in response.split(b"\r\n", 1)[0]
        assert daemon.request("GET", "/v1/healthz")[0] == 200

    def test_garbage_request_line_is_400(self, daemon):
        with socket.create_connection(("127.0.0.1", daemon.port), 10) as sock:
            sock.sendall(b"utter nonsense\r\n\r\n")
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert daemon.request("GET", "/v1/healthz")[0] == 200

    def test_wait_job_round_trips_canonical(self, daemon):
        status, _, body = daemon.post_job({"source": CONST_PROP, "wait": True})
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "done"
        # the envelope kind routes the document; the job's own kind must
        # not clobber it (regression: "kind" used to come out as "suite")
        assert doc["kind"] == "job"
        assert doc["job_kind"] == "suite"
        # compare against a local serial run of the same single pattern
        from repro.cli import parse_blocks
        from repro.cobalt.dsl import Optimization

        items = [Optimization(i) if not isinstance(i, Optimization) else i
                 for i in parse_blocks(CONST_PROP)]
        local = verify_suite(FAST, analyses=[], optimizations=items)
        assert doc["result"]["canonical"] == local.canonical()
        assert doc["result"]["suite"]["kind"] == "suite-report"

    def test_poll_and_stream(self, daemon):
        status, _, body = daemon.post_job({"source": CONST_PROP})
        assert status == 202
        job_id = json.loads(body)["id"]

        status, headers, body = daemon.request(
            "GET", f"/v1/jobs/{job_id}/events"
        )
        assert status == 200
        events = [json.loads(line) for line in body.splitlines() if line]
        kinds = [e.get("event") or e.get("kind") for e in events]
        assert kinds[0] == "started"
        assert "report" in kinds
        assert kinds[-1] == "done"

        status, _, body = daemon.request("GET", f"/v1/jobs/{job_id}")
        assert status == 200
        assert json.loads(body)["status"] == "done"


class TestHTTPLimits:
    def test_rate_limit_429_with_retry_after(self):
        fixture = _start_daemon(rate=0.0, burst=2.0)
        try:
            seen = []
            for _ in range(3):
                status, headers, _ = fixture.post_job(
                    {"optimizations": []},
                    headers={"X-Repro-Client": "greedy"},
                )
                seen.append((status, headers))
            assert [s for s, _ in seen[:2]] == [202, 202]
            status, headers = seen[2]
            assert status == 429
            assert "Retry-After" in headers
        finally:
            fixture.server.request_stop()
            fixture.thread.join(timeout=30)

    def test_distinct_clients_have_distinct_budgets(self):
        fixture = _start_daemon(rate=0.0, burst=1.0)
        try:
            a1 = fixture.post_job({"optimizations": []},
                                  headers={"X-Repro-Client": "a"})[0]
            b1 = fixture.post_job({"optimizations": []},
                                  headers={"X-Repro-Client": "b"})[0]
            a2 = fixture.post_job({"optimizations": []},
                                  headers={"X-Repro-Client": "a"})[0]
            assert (a1, b1, a2) == (202, 202, 429)
        finally:
            fixture.server.request_stop()
            fixture.thread.join(timeout=30)

    def test_header_rotation_cannot_bypass_address_budget(self):
        # X-Repro-Client is client-supplied: rotating it mints per-client
        # buckets, but they all drain one per-address aggregate (8x the
        # per-client budget), so spoofed submissions still hit 429.
        fixture = _start_daemon(rate=0.0, burst=1.0)
        try:
            statuses = [
                fixture.post_job(
                    {"optimizations": []},
                    headers={"X-Repro-Client": f"spoof-{i}"},
                )[0]
                for i in range(9)
            ]
            assert statuses[:8] == [202] * 8
            assert statuses[8] == 429
        finally:
            fixture.server.request_stop()
            fixture.thread.join(timeout=30)

    def test_overloaded_submission_is_429(self):
        svc = VerificationService(FAST, max_live_jobs=1)
        svc._jobs["blocker"] = Job("blocker", "suite")
        fixture = _start_daemon(service=svc)
        try:
            status, headers, _ = fixture.post_job({"optimizations": []})
            assert status == 429
            assert "Retry-After" in headers
            assert fixture.request("GET", "/v1/healthz")[0] == 200
        finally:
            del svc._jobs["blocker"]
            fixture.server.request_stop()
            fixture.thread.join(timeout=30)

    def test_exhausted_wait_slots_fall_back_to_202(self, daemon):
        # Every wait slot taken: the job is still accepted, just answered
        # 202 for polling instead of parking yet another thread.
        daemon.server._waiters = daemon.server._max_waiters
        try:
            status, _, body = daemon.post_job(
                {"optimizations": [], "wait": True}
            )
        finally:
            daemon.server._waiters = 0
        assert status == 202
        job_id = json.loads(body)["id"]
        assert daemon.request("GET", f"/v1/jobs/{job_id}")[0] == 200

    def test_oversized_body_is_413(self):
        fixture = _start_daemon(max_body_bytes=512)
        try:
            big = json.dumps(envelope("job-request", {
                "source": "x" * 4096
            })).encode()
            status, _, body = fixture.request("POST", "/v1/jobs", body=big)
            assert status == 413
            assert fixture.request("GET", "/v1/healthz")[0] == 200
        finally:
            fixture.server.request_stop()
            fixture.thread.join(timeout=30)

    def test_disconnect_mid_stream_does_not_kill_job(self, daemon):
        status, _, body = daemon.post_job({"source": CONST_PROP})
        assert status == 202
        job_id = json.loads(body)["id"]
        # Open the event stream raw and slam the connection shut while the
        # job is (likely still) running.
        with socket.create_connection(("127.0.0.1", daemon.port), 10) as sock:
            sock.sendall(
                f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
                f"Host: x\r\n\r\n".encode()
            )
            sock.recv(64)  # read a little, then vanish
        # The daemon keeps serving and the job still completes.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, _, body = daemon.request("GET", f"/v1/jobs/{job_id}")
            assert status == 200
            if json.loads(body)["status"] in ("done", "error"):
                break
            time.sleep(0.1)
        assert json.loads(body)["status"] == "done"
        assert daemon.request("GET", "/v1/healthz")[0] == 200


class TestConcurrentClients:
    N = 4

    def test_concurrent_clients_byte_identical_and_batched(self):
        fixture = _start_daemon(batch_window_s=0.5, max_concurrent_jobs=self.N)
        try:
            results = [None] * self.N
            errors = []

            def worker(i):
                try:
                    status, _, body = fixture.post_job(
                        {"source": CONST_PROP, "wait": True},
                        headers={"X-Repro-Client": f"client-{i}"},
                    )
                    assert status == 200, body
                    results[i] = json.loads(body)["result"]["canonical"]
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(self.N)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not errors
            assert all(r is not None for r in results)

            from repro.cli import parse_blocks
            from repro.cobalt.dsl import Optimization

            items = [Optimization(i) if not isinstance(i, Optimization) else i
                     for i in parse_blocks(CONST_PROP)]
            local = verify_suite(FAST, analyses=[], optimizations=items)
            assert set(results) == {local.canonical()}

            _, _, body = fixture.request("GET", "/v1/stats")
            stats = json.loads(body)
            broker = stats["broker"]
            # Cross-request batching actually happened: either several jobs
            # shared a dispatch, or later jobs replayed the shared cache.
            assert (
                broker["shared_dispatches"] >= 1
                or broker["coalesced"] >= 1
                or stats["cache"]["hits"] >= 1
            )
            assert stats["jobs"]["completed"] == self.N
        finally:
            fixture.server.request_stop()
            fixture.thread.join(timeout=30)


@pytest.mark.slow
class TestFullSuiteOverHTTP:
    """The acceptance bar: 8 concurrent clients, the full E1 suite each,
    byte-identical to a serial local run, with batching visible in /stats."""

    N = 8

    def test_eight_clients_full_suite(self):
        fixture = _start_daemon(batch_window_s=0.5, max_concurrent_jobs=self.N)
        try:
            results = [None] * self.N
            errors = []

            def worker(i):
                try:
                    status, _, body = fixture.post_job(
                        {"wait": True},
                        headers={"X-Repro-Client": f"client-{i}"},
                        timeout=3600.0,
                    )
                    assert status == 200, body
                    results[i] = json.loads(body)["result"]["canonical"]
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(self.N)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            local = verify_suite(FAST)
            assert set(results) == {local.canonical()}

            _, _, body = fixture.request("GET", "/v1/stats")
            stats = json.loads(body)
            assert (
                stats["broker"]["shared_dispatches"] >= 1
                or stats["broker"]["coalesced"] >= 1
                or stats["cache"]["hits"] >= 1
            )
        finally:
            fixture.server.request_stop()
            fixture.thread.join(timeout=60)
