"""Concrete validation of backward witnesses: run the original and the
DAE-transformed program in lockstep and check the two-state witness
``etaOld/X = etaNew/X`` at every paired state — the dynamic content of
obligations B1/B2/B3 (after the enabling statement the states coincide,
which ``equal_except_var`` subsumes)."""

import pytest

from repro.il import Interpreter, parse_program
from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.il.interp import Finished, Next
from repro.il.program import Program
from repro.cobalt.engine import CobaltEngine
from repro.cobalt.labels import standard_registry
from repro.opts import dae

ENGINE = CobaltEngine(standard_registry())


def lockstep_check(program: Program, args, fuel=3000):
    """Apply DAE one instance at a time; for each, verify the lockstep
    witness along full traces.  Returns the number of state pairs checked."""
    proc = program.main
    delta = ENGINE.legal_transformations(dae.pattern, proc)
    checked = 0
    for inst in delta:
        removed_var = inst.subst()["X"].name
        transformed = program.with_proc(
            ENGINE.apply_pattern(dae.pattern, proc, [inst])
        )
        for arg in args:
            checked += _trace_pair(program, transformed, removed_var, arg, fuel)
    return checked


def _trace_pair(original, transformed, removed_var, arg, fuel):
    interp_old = Interpreter(original)
    interp_new = Interpreter(transformed)
    old_state = interp_old.initial_state(arg)
    new_state = interp_new.initial_state(arg)
    checked = 0
    for _ in range(fuel):
        assert old_state.equal_except_var(new_state, removed_var), (
            f"witness violated at index {old_state.index} "
            f"(removed {removed_var}, arg {arg})"
        )
        checked += 1
        old_result = interp_old.intra_step(old_state)
        new_result = interp_new.intra_step(new_state)
        if isinstance(old_result, Finished):
            # Semantic equivalence: same returned value.
            assert isinstance(new_result, Finished)
            assert new_result.value == old_result.value
            break
        if not isinstance(old_result, Next):
            break  # original stuck: nothing more is claimed
        assert isinstance(new_result, Next), (
            f"transformed trace stuck while original stepped "
            f"(index {old_state.index}, arg {arg})"
        )
        old_state, new_state = old_result.state, new_result.state
    return checked


class TestHandPrograms:
    def test_simple_dead_assignment(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              x := n + 1;
              x := 2;
              return x;
            }
            """
        )
        assert lockstep_check(program, [0, 5]) > 0

    def test_dead_via_return(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl y;
              y := n;
              x := y * 3;
              return y;
            }
            """
        )
        assert lockstep_check(program, [0, 5]) > 0

    def test_dead_on_both_branch_arms(self):
        program = parse_program(
            """
            main(n) {
              decl x;
              decl y;
              x := 7;
              if n goto 4 else 6;
              y := 1;
              if 1 goto 7 else 7;
              y := 2;
              return y;
            }
            """
        )
        assert lockstep_check(program, [0, 1]) > 0


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(25))
    def test_lockstep_witness(self, seed):
        generator = ProgramGenerator(GeneratorConfig(num_stmts=10), seed=seed)
        program = Program((generator.gen_proc(),))
        lockstep_check(program, [-1, 0, 2])

    @pytest.mark.parametrize("seed", range(15))
    def test_lockstep_witness_with_pointers(self, seed):
        generator = ProgramGenerator(
            GeneratorConfig(num_stmts=12, allow_pointers=True), seed=seed
        )
        program = Program((generator.gen_proc(),))
        lockstep_check(program, [0, 1])
