"""Hash-consing invariants (docs/TERMS.md).

Three layers of pinning:

1. **Semantics agreement** — for arbitrary generated terms/formulas, the
   interned constructors must agree with the original frozen-dataclass
   implementation (:mod:`repro.logic.reference`) on ``==``, hash
   consistency, ``str``, free variables, size, groundness, and
   substitution.  Hypothesis when available, a seeded-random corpus of the
   same shape otherwise.
2. **Identity** — structurally equal interned nodes are the *same object*,
   including after pickle round-trips (the process-pool checker ships
   obligations through pickle) and ``copy``/``deepcopy``.
3. **Byte-identity of the memoized pipeline** — re-running the soundness
   checker with every transformation memo disabled
   (:func:`repro.logic.intern.structural_reference`) must reproduce the
   memo-on verdicts, counterexample contexts, and per-round instance logs
   exactly.  Fast subset always; the full suite under ``-m slow``.
"""

import copy
import gc
import pickle
import random

import pytest

from repro.logic import intern as I
from repro.logic import reference as ref
from repro.logic import formulas as F
from repro.logic import terms as T
from repro.logic.formulas import (
    And,
    Clause,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    Pred,
    Top,
    Bottom,
    clausify,
    formula_free_vars,
    subst_formula,
)
from repro.logic.terms import App, IntConst, LVar, free_vars, is_ground, subst, term_size
from repro.opts import ALL_OPTIMIZATIONS
from repro.prover import Prover, ProverConfig
from repro.api import VerifyOptions
from repro.verify import SoundnessChecker

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_HYPOTHESIS = False


# ---------------------------------------------------------------------------
# Generators: build *specs* (plain tuples), then realize each spec twice —
# through the interning constructors and through the reference dataclasses —
# so the two sides are constructed independently.
# ---------------------------------------------------------------------------


def _term_spec(rng, depth=3):
    c = rng.random()
    if depth == 0 or c < 0.35:
        k = rng.randrange(4)
        if k == 0:
            return ("V", rng.choice("xyz"))
        if k == 1:
            return ("I", rng.randrange(4))
        return ("A", rng.choice("abc"), ())
    fn = rng.choice(["f", "g", "pair"])
    n = 2 if fn == "pair" else 1
    return ("A", fn, tuple(_term_spec(rng, depth - 1) for _ in range(n)))


def _formula_spec(rng, depth=3):
    c = rng.random()
    if depth == 0 or c < 0.3:
        k = rng.randrange(4)
        if k == 0:
            return ("Top",)
        if k == 1:
            return ("Bot",)
        if k == 2:
            return ("Eq", _term_spec(rng, 2), _term_spec(rng, 2))
        return ("Pred", rng.choice("PQ"), (_term_spec(rng, 2),))
    k = rng.randrange(7)
    if k == 0:
        return ("Not", _formula_spec(rng, depth - 1))
    if k == 1:
        return ("And", tuple(_formula_spec(rng, depth - 1) for _ in range(2)))
    if k == 2:
        return ("Or", tuple(_formula_spec(rng, depth - 1) for _ in range(2)))
    if k == 3:
        return ("Imp", _formula_spec(rng, depth - 1), _formula_spec(rng, depth - 1))
    if k == 4:
        return ("Iff", _formula_spec(rng, depth - 1), _formula_spec(rng, depth - 1))
    if k == 5:
        return ("FA", ("x",), _formula_spec(rng, depth - 1))
    return ("EX", ("y",), _formula_spec(rng, depth - 1))


def _build_term(spec, mod):
    tag = spec[0]
    if tag == "V":
        return mod.LVar(spec[1])
    if tag == "I":
        return mod.IntConst(spec[1])
    return mod.App(spec[1], tuple(_build_term(s, mod) for s in spec[2]))


def _build_formula(spec, mod):
    tag = spec[0]
    if tag == "Top":
        return mod.Top()
    if tag == "Bot":
        return mod.Bottom()
    if tag == "Eq":
        return mod.Eq(_build_term(spec[1], mod), _build_term(spec[2], mod))
    if tag == "Pred":
        return mod.Pred(spec[1], tuple(_build_term(s, mod) for s in spec[2]))
    if tag == "Not":
        return mod.Not(_build_formula(spec[1], mod))
    if tag == "And":
        return mod.And(tuple(_build_formula(s, mod) for s in spec[1]))
    if tag == "Or":
        return mod.Or(tuple(_build_formula(s, mod) for s in spec[1]))
    if tag == "Imp":
        return mod.Implies(_build_formula(spec[1], mod), _build_formula(spec[2], mod))
    if tag == "Iff":
        return mod.Iff(_build_formula(spec[1], mod), _build_formula(spec[2], mod))
    if tag == "FA":
        return mod.Forall(spec[1], _build_formula(spec[2], mod))
    return mod.Exists(spec[1], _build_formula(spec[2], mod))


_BINDING_SPECS = [
    {},
    {"x": ("A", "a", ())},
    {"x": ("A", "f", (("V", "y"),)), "y": ("I", 1)},
    {"z": ("A", "pair", (("A", "a", ()), ("I", 0)))},
]


def _check_term_pair(spec1, spec2, binding_spec):
    i1, i2 = _build_term(spec1, T), _build_term(spec2, T)
    r1, r2 = _build_term(spec1, ref), _build_term(spec2, ref)
    # Equality agrees with the reference dataclasses; equal means identical.
    assert (i1 == i2) == (r1 == r2)
    if i1 == i2:
        assert i1 is i2, "equal interned terms must be the same object"
        assert hash(i1) == hash(i2)
    # Rendering and the cached per-node facts.
    assert str(i1) == str(r1)
    assert repr(i1) == repr(r1)
    assert free_vars(i1) == ref.free_vars(r1)
    assert term_size(i1) == ref.term_size(r1)
    assert is_ground(i1) == (not ref.free_vars(r1))
    # Substitution commutes with the representation change.
    ib = {k: _build_term(v, T) for k, v in binding_spec.items()}
    rb = {k: _build_term(v, ref) for k, v in binding_spec.items()}
    assert ref.to_reference(subst(i1, ib)) == ref.subst(r1, rb)


def _check_formula_pair(spec1, spec2, binding_spec):
    i1, i2 = _build_formula(spec1, F), _build_formula(spec2, F)
    r1, r2 = _build_formula(spec1, ref), _build_formula(spec2, ref)
    assert (i1 == i2) == (r1 == r2)
    if i1 == i2:
        assert i1 is i2, "equal interned formulas must be the same object"
        assert hash(i1) == hash(i2)
    assert str(i1) == str(r1)
    assert repr(i1) == repr(r1)
    assert formula_free_vars(i1) == ref.formula_free_vars(r1)
    ib = {k: _build_term(v, T) for k, v in binding_spec.items()}
    rb = {k: _build_term(v, ref) for k, v in binding_spec.items()}
    assert ref.to_reference(subst_formula(i1, ib)) == ref.subst_formula(r1, rb)


_SEED_CASES = [(seed, seed % len(_BINDING_SPECS)) for seed in range(60)]


@pytest.mark.parametrize("seed,bidx", _SEED_CASES[:30], ids=lambda v: str(v))
def test_terms_agree_with_reference_seeded(seed, bidx):
    rng = random.Random(seed)
    _check_term_pair(
        _term_spec(rng), _term_spec(rng), _BINDING_SPECS[bidx]
    )


@pytest.mark.parametrize("seed,bidx", _SEED_CASES[30:], ids=lambda v: str(v))
def test_formulas_agree_with_reference_seeded(seed, bidx):
    rng = random.Random(seed)
    _check_formula_pair(
        _formula_spec(rng), _formula_spec(rng), _BINDING_SPECS[bidx]
    )


if HAVE_HYPOTHESIS:

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        bidx=st.integers(min_value=0, max_value=len(_BINDING_SPECS) - 1),
    )
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_terms_agree_with_reference_hypothesis(seed, bidx):
        rng = random.Random(seed)
        _check_term_pair(
            _term_spec(rng, 4), _term_spec(rng, 4), _BINDING_SPECS[bidx]
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        bidx=st.integers(min_value=0, max_value=len(_BINDING_SPECS) - 1),
    )
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_formulas_agree_with_reference_hypothesis(seed, bidx):
        rng = random.Random(seed)
        _check_formula_pair(
            _formula_spec(rng, 4), _formula_spec(rng, 4), _BINDING_SPECS[bidx]
        )


# ---------------------------------------------------------------------------
# Identity: construction, literals/clauses, pickle, copy.
# ---------------------------------------------------------------------------


def test_separately_built_nodes_are_identical():
    x = LVar("x")
    t1 = App("f", (App("g", (x, IntConst(3))), App("a")))
    t2 = App("f", (App("g", (LVar("x"), IntConst(3))), App("a")))
    assert t1 is t2
    f1 = Forall(("x",), Implies(Pred("P", (x,)), Eq(t1, x)))
    f2 = Forall(("x",), Implies(Pred("P", (LVar("x"),)), Eq(t2, LVar("x"))))
    assert f1 is f2
    c1 = Clause((Literal(True, Eq(t1, x)),), origin="ax")
    c2 = Clause([Literal(True, Eq(t2, LVar("x")))], origin="ax")
    assert c1 is c2
    # Distinct origins / triggers / signs stay distinct.
    assert c1 is not Clause(c1.literals, origin="other")
    assert Literal(True, Eq(t1, x)) is not Literal(False, Eq(t1, x))


def test_nodes_are_immutable():
    t = App("f", (App("a"),))
    with pytest.raises(AttributeError):
        t.fn = "g"
    with pytest.raises(AttributeError):
        del t.args
    lit = Literal(True, Pred("P"))
    with pytest.raises(AttributeError):
        lit.positive = False


def test_pickle_roundtrip_returns_the_same_objects():
    goal = Implies(
        Pred("P", (App("f", (LVar("x"), IntConst(2))),)),
        Exists(("y",), Eq(LVar("y"), App("a"))),
    )
    clause = clausify(Forall(("x",), Iff(Pred("Q", (LVar("x"),)), Top())))[0]
    for node in [goal, clause, App("f", (IntConst(1),)), Literal(False, Pred("P"))]:
        back = pickle.loads(pickle.dumps(node))
        assert back is node, f"pickle round-trip broke identity for {node!r}"
    # copy/deepcopy respect interning too (a deepcopy that duplicated nodes
    # would silently disable every identity fast path downstream).
    assert copy.copy(goal) is goal
    assert copy.deepcopy(goal) is goal


def test_unpickling_in_fresh_table_still_equal():
    """Pickle carries structure, not identity: bytes produced here rebuild
    through the constructors, so cross-process round-trips (the parallel
    checker's workers) re-intern into whatever table they land in."""
    t = App("f", (App("g", (LVar("v"),)), IntConst(7)))
    cls, args = t.__reduce__()
    rebuilt = cls(*args)
    assert rebuilt is t


def test_obligations_survive_parallel_pickling():
    """End-to-end: a parallel (jobs=2) verification round-trips obligations
    and reports through pickle and must agree with the serial checker."""
    opt = next(o for o in ALL_OPTIMIZATIONS if o.name == "constFold")
    cfg = ProverConfig(timeout_s=60.0)
    serial = SoundnessChecker(config=cfg).check_optimization(opt)
    parallel = SoundnessChecker(
        config=cfg, options=VerifyOptions(jobs=2)
    ).check_optimization(opt)
    assert serial.canonical() == parallel.canonical()
    assert parallel.sound


def test_intern_table_is_weak():
    I.clear_memos()
    gc.collect()
    before = I.table_size()
    probes = [App("gc_probe", (IntConst(i),)) for i in range(1000)]
    assert I.table_size() >= before + 1000
    del probes
    I.clear_memos()
    gc.collect()
    assert I.table_size() < before + 100, "dead nodes must leave the table"


# ---------------------------------------------------------------------------
# Memoized pipeline == unmemoized pipeline, byte for byte.
# ---------------------------------------------------------------------------

_FAST_NAMES = ("constProp", "copyProp", "constFold", "branchFold", "selfAssignRemoval")


def _report_fingerprint(report):
    ctxs = tuple(
        (r.obligation, r.proved, tuple(r.context)) for r in report.results
    )
    for dep in report.dependencies:
        ctxs += tuple(
            (r.obligation, r.proved, tuple(r.context)) for r in dep.results
        )
    return report.canonical(), ctxs


def _check_memo_identity(opt):
    fps = {}
    for label, memo_on in (("memo", True), ("structural", False)):
        checker = SoundnessChecker(config=ProverConfig(timeout_s=120.0))
        if memo_on:
            fps[label] = _report_fingerprint(checker.check_optimization(opt))
        else:
            with I.structural_reference():
                fps[label] = _report_fingerprint(checker.check_optimization(opt))
    assert fps["memo"] == fps["structural"], f"{opt.name}: memoization changed output"


@pytest.mark.parametrize(
    "opt",
    [o for o in ALL_OPTIMIZATIONS if o.name in _FAST_NAMES],
    ids=lambda o: o.name,
)
def test_memo_on_off_identical_fast(opt):
    _check_memo_identity(opt)


@pytest.mark.slow
@pytest.mark.parametrize("opt", ALL_OPTIMIZATIONS, ids=lambda o: o.name)
def test_memo_on_off_identical_full_suite(opt):
    _check_memo_identity(opt)


def test_memo_on_off_round_instances_identical():
    """Round-by-round instance logs must not feel the memos either."""
    x, y = LVar("x"), LVar("y")
    f = lambda t: App("f", (t,))
    axioms = [
        Forall(("x",), Implies(Pred("P", (x,)), Pred("P", (f(x),)))),
        Forall(
            ("x", "y"),
            Implies(And((Pred("P", (x,)), Eq(f(x), f(y)))), Pred("Q", (y,))),
        ),
    ]
    goal = Implies(Pred("P", (App("a"),)), Pred("Q", (f(App("a")),)))
    out = {}
    for label, memo_on in (("memo", True), ("structural", False)):
        def run():
            prover = Prover(
                list(axioms),
                config=ProverConfig(timeout_s=20.0, record_round_instances=True),
            )
            result = prover.prove(goal)
            rounds = [sorted(r) for r in (result.round_instances or [])]
            return (result.status, tuple(result.context), rounds)

        if memo_on:
            out[label] = run()
        else:
            with I.structural_reference():
                out[label] = run()
    assert out["memo"] == out["structural"]
    assert out["memo"][0].name == "PROVED"


# ---------------------------------------------------------------------------
# Observability.
# ---------------------------------------------------------------------------


def test_prover_stats_expose_intern_metrics():
    x = LVar("x")
    axioms = [Forall(("x",), Implies(Pred("P", (x,)), Pred("Q", (x,))))]
    goal = Implies(Pred("P", (App("a"),)), Pred("Q", (App("a"),)))
    prover = Prover(axioms, config=ProverConfig(timeout_s=10.0))
    result = prover.prove(goal)
    assert result.proved
    stats = result.stats
    assert stats.intern_table > 0
    assert stats.intern_hits + stats.intern_misses > 0
    table = stats.table()
    for label in ("intern table size", "intern hit rate", "subst memo hit rate",
                  "pipeline memo hit rate", "free-vars cache hits"):
        assert label in table
    # merge() accumulates the new counters like the old ones.
    other = type(stats)(intern_hits=3, intern_misses=1, intern_table=7)
    before = stats.intern_hits
    stats.merge(other)
    assert stats.intern_hits == before + 3
    assert stats.intern_table >= 7


def test_global_intern_summary_renders():
    line = I.STATS.summary()
    assert "intern table" in line and "live nodes" in line
