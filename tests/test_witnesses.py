"""Unit tests for the witness predicates' concrete (state-level) semantics."""

import pytest

from repro.il import Interpreter, parse_program
from repro.il.ast import Const, Var, BinOp, Deref
from repro.il.interp import Next
from repro.cobalt.patterns import ConstPat, ExprPat, VarPat
from repro.cobalt.witness import (
    Conj,
    EqualExceptVar,
    NotPointedTo,
    TrueWitness,
    VarEqConst,
    VarEqExpr,
    VarEqVar,
)

PROGRAM = parse_program(
    """
    main(n) {
      decl a;
      decl b;
      decl p;
      a := 5;
      b := a;
      p := &a;
      return b;
    }
    """
)


def state_after(steps, arg=0, program=PROGRAM):
    interp = Interpreter(program)
    state = interp.initial_state(arg)
    for _ in range(steps):
        result = interp.step(state)
        assert isinstance(result, Next)
        state = result.state
    return state, interp


class TestForwardWitnesses:
    def test_true_witness(self):
        state, interp = state_after(0)
        assert TrueWitness().holds(state, {}, interp)

    def test_var_eq_const(self):
        state, interp = state_after(4)  # after a := 5
        theta = {"Y": Var("a"), "C": Const(5)}
        assert VarEqConst(VarPat("Y"), ConstPat("C")).holds(state, theta, interp)
        theta_wrong = {"Y": Var("a"), "C": Const(6)}
        assert not VarEqConst(VarPat("Y"), ConstPat("C")).holds(state, theta_wrong, interp)

    def test_var_eq_const_with_concrete_leaves(self):
        state, interp = state_after(4)
        assert VarEqConst(Var("a"), Const(5)).holds(state, {}, interp)

    def test_var_eq_var(self):
        state, interp = state_after(5)  # after b := a
        theta = {"Y": Var("b"), "Z": Var("a")}
        assert VarEqVar(VarPat("Y"), VarPat("Z")).holds(state, theta, interp)

    def test_var_eq_expr(self):
        state, interp = state_after(5)
        theta = {"X": Var("b"), "E": BinOp("+", Var("a"), Const(0))}
        assert VarEqExpr(VarPat("X"), ExprPat("E")).holds(state, theta, interp)

    def test_var_eq_expr_deref(self):
        program = parse_program(
            """
            main(n) {
              decl p;
              decl x;
              p := new;
              *p := 7;
              x := *p;
              return x;
            }
            """
        )
        state, interp = state_after(5, program=program)
        theta = {"X": Var("x"), "W": Var("p")}
        assert VarEqExpr(VarPat("X"), Deref(VarPat("W"))).holds(state, theta, interp)

    def test_not_pointed_to(self):
        before, interp = state_after(5)  # before p := &a
        after, _ = state_after(6)  # after p := &a
        theta = {"X": Var("a")}
        witness = NotPointedTo(VarPat("X"))
        assert witness.holds(before, theta, interp)
        assert not witness.holds(after, theta, interp)
        # b is never pointed to.
        assert witness.holds(after, {"X": Var("b")}, interp)

    def test_conj(self):
        state, interp = state_after(5)
        witness = Conj(
            (
                VarEqConst(Var("a"), Const(5)),
                VarEqVar(Var("b"), Var("a")),
            )
        )
        assert witness.holds(state, {}, interp)


class TestBackwardWitnesses:
    def test_equal_except_var_reflexive(self):
        state, interp = state_after(3)
        assert EqualExceptVar(Var("a")).holds2(state, state, {}, interp)

    def test_equal_except_var_tolerates_x_difference(self):
        state, interp = state_after(4)
        loc = state.env.lookup("a")
        other = state.__class__(
            state.proc_name,
            state.index,
            state.env,
            state.store.update(loc, 999),
            state.stack,
            state.alloc,
        )
        assert EqualExceptVar(Var("a")).holds2(state, other, {}, interp)
        assert not EqualExceptVar(Var("b")).holds2(state, other, {}, interp)

    def test_index_difference_rejected(self):
        s1, interp = state_after(3)
        s2, _ = state_after(4)
        assert not EqualExceptVar(Var("a")).holds2(s1, s2, {}, interp)

    def test_unbound_argument_raises(self):
        state, interp = state_after(0)
        with pytest.raises(ValueError):
            VarEqConst(VarPat("Y"), ConstPat("C")).holds(state, {}, interp)
