"""The persistent content-addressed proof cache (repro.verify.cache).

Covers the cache contract the parallel/cached checker relies on:

* miss-then-hit round trips through a real checker, with identical verdicts;
* key stability across *processes* (keys are content hashes of
  deterministically rendered formulas, not interned ids);
* invalidation when an optimization's guards, witness, or the background
  axiom set change (the key covers all proof inputs);
* ``unknown`` verdicts are config-scoped while ``proved`` ones are not;
* a corrupted cache file is recovered from, never fatal;
* the sharded on-disk store (one file per verdict) merges concurrent
  writers instead of clobbering, and the pre-CAS monolithic file is
  migrated exactly once.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cobalt.guards import GNot, GLabel
from repro.cobalt.labels import standard_registry
from repro.cobalt.patterns import VarPat
from repro.prover import ProverConfig
from repro.api import VerifyOptions
from repro.verify import ProofCache, SoundnessChecker
from repro.verify.cache import (
    CACHE_FILENAME,
    SCHEMA_VERSION,
    axioms_digest,
    config_fingerprint,
    obligation_key,
)
from repro.verify.encode import CONSTRUCTORS, all_axioms
from repro.verify.obligations import ObligationBuilder
from repro.opts import const_fold, const_prop

FAST = ProverConfig(timeout_s=60.0)


def _obligations(pattern):
    return ObligationBuilder(standard_registry()).forward_obligations(pattern)


@pytest.fixture()
def digest():
    return axioms_digest(all_axioms(), CONSTRUCTORS)


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cold = SoundnessChecker(
            config=FAST, options=VerifyOptions(cache_dir=str(tmp_path))
        )
        report_cold = cold.check_optimization(const_fold)
        assert report_cold.sound
        assert cold.cache.stats.hits == 0
        # One content-addressed object per *distinct* verdict (constFold's
        # F2/F3 share a goal, hence a key — the identical re-put is
        # skipped), sharded by key prefix.
        digest = axioms_digest(all_axioms(), CONSTRUCTORS)
        distinct = {obligation_key(ob, digest)
                    for ob in _obligations(const_fold.pattern)}
        assert cold.cache.stats.stores == len(distinct)
        objects = tmp_path / "objects"
        assert objects.is_dir()
        stored = list(objects.glob("*/*.json"))
        assert len(stored) == len(distinct)
        assert all(p.parent.name == p.stem[:2] for p in stored)

        warm = SoundnessChecker(
            config=FAST, options=VerifyOptions(cache_dir=str(tmp_path))
        )
        report_warm = warm.check_optimization(const_fold)
        assert report_warm.sound
        assert warm.cache.stats.misses == 0
        assert warm.cache.stats.hits == len(report_warm.results)
        assert all(r.cached for r in report_warm.results)
        # Same verdicts, same canonical report, near-zero replay time.
        assert report_warm.canonical() == report_cold.canonical()
        assert report_warm.elapsed_s < report_cold.elapsed_s

    def test_cache_shared_across_checker_instances(self, tmp_path):
        cache = ProofCache(tmp_path)
        a = SoundnessChecker(config=FAST, proof_cache=cache)
        a.check_optimization(const_fold)
        b = SoundnessChecker(config=FAST, proof_cache=cache)
        report = b.check_optimization(const_fold)
        assert all(r.cached for r in report.results)


class TestKeyStability:
    def test_same_obligation_same_key(self, digest):
        keys1 = [obligation_key(ob, digest) for ob in _obligations(const_fold.pattern)]
        keys2 = [obligation_key(ob, digest) for ob in _obligations(const_fold.pattern)]
        assert keys1 == keys2

    def test_keys_stable_across_processes(self, digest):
        keys = [obligation_key(ob, digest) for ob in _obligations(const_prop.pattern)]
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        script = (
            "from repro.verify.cache import axioms_digest, obligation_key\n"
            "from repro.verify.encode import CONSTRUCTORS, all_axioms\n"
            "from repro.verify.obligations import ObligationBuilder\n"
            "from repro.cobalt.labels import standard_registry\n"
            "from repro.opts import const_prop\n"
            "digest = axioms_digest(all_axioms(), CONSTRUCTORS)\n"
            "obs = ObligationBuilder(standard_registry())"
            ".forward_obligations(const_prop.pattern)\n"
            "print('\\n'.join(obligation_key(ob, digest) for ob in obs))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == keys


class TestInvalidation:
    def test_guard_change_invalidates_affected_obligations(self, digest):
        # The innocuous guard psi2 occurs in F2 only, so editing it must
        # invalidate F2 — and *only* F2: F1/F3 verdicts survive the edit.
        base = {ob.name: obligation_key(ob, digest)
                for ob in _obligations(const_prop.pattern)}
        weakened = dataclasses.replace(
            const_prop.pattern, psi2=GNot(GLabel("syntacticDef", (VarPat("Y"),)))
        )
        changed = {ob.name: obligation_key(ob, digest)
                   for ob in _obligations(weakened)}
        assert changed["F2"] != base["F2"]
        assert changed["F1"] == base["F1"]
        assert changed["F3"] == base["F3"]

    def test_witness_change_changes_keys(self, digest):
        from repro.cobalt.witness import TrueWitness

        base = _obligations(const_prop.pattern)
        rewitnessed = dataclasses.replace(const_prop.pattern, witness=TrueWitness())
        changed = _obligations(rewitnessed)
        assert {obligation_key(ob, digest) for ob in base}.isdisjoint(
            obligation_key(ob, digest) for ob in changed
        )

    def test_axiom_set_change_changes_keys(self):
        ob = _obligations(const_fold.pattern)[0]
        full = axioms_digest(all_axioms(), CONSTRUCTORS)
        truncated = axioms_digest(all_axioms()[:-1], CONSTRUCTORS)
        assert full != truncated
        assert obligation_key(ob, full) != obligation_key(ob, truncated)

    def test_name_does_not_participate(self, digest):
        ob = _obligations(const_fold.pattern)[0]
        renamed = dataclasses.replace(ob, name="somethingElse")
        assert obligation_key(ob, digest) == obligation_key(renamed, digest)


class TestConfigScoping:
    def test_unknown_only_replayed_under_same_config(self, tmp_path):
        cache = ProofCache(tmp_path)
        fp_small = config_fingerprint(ProverConfig(timeout_s=1.0))
        fp_big = config_fingerprint(ProverConfig(timeout_s=300.0))
        cache.put("k", proved=False, elapsed_s=1.0, context=["<resource limit>"],
                  config_fp=fp_small)
        assert cache.get("k", fp_big) is None  # a bigger budget might prove it
        hit = cache.get("k", fp_small)
        assert hit is not None and not hit.proved

    def test_proved_replayed_under_any_config(self, tmp_path):
        cache = ProofCache(tmp_path)
        fp_small = config_fingerprint(ProverConfig(timeout_s=1.0))
        fp_big = config_fingerprint(ProverConfig(timeout_s=300.0))
        cache.put("k", proved=True, elapsed_s=1.0, config_fp=fp_small)
        hit = cache.get("k", fp_big)
        assert hit is not None and hit.proved

    def test_hard_timeout_scopes_unknown_verdicts(self, tmp_path):
        # A hard-timeout ``unknown`` produced under a tiny per-obligation
        # wall-clock limit must never replay for a caller running under
        # the default limit — in the daemon, where one shared cache serves
        # every client, that would let one client's timeout flip another
        # client's obligations to unproved.
        cache = ProofCache(tmp_path)
        cfg = ProverConfig(timeout_s=60.0)
        fp_tiny = config_fingerprint(cfg, hard_timeout_s=0.001)
        fp_default = config_fingerprint(cfg)
        assert fp_tiny != fp_default
        cache.put("k", proved=False, elapsed_s=0.001,
                  context=["<hard timeout>"], config_fp=fp_tiny)
        assert cache.get("k", fp_default) is None
        hit = cache.get("k", fp_tiny)
        assert hit is not None and not hit.proved

    def test_checker_fingerprint_covers_hard_timeout(self):
        default = SoundnessChecker(config=FAST)
        limited = SoundnessChecker(
            config=FAST, options=VerifyOptions(obligation_timeout_s=0.5)
        )
        assert default._config_fp != limited._config_fp


class TestPrefetchLocking:
    def test_get_not_blocked_by_slow_remote(self):
        # The daemon shares one cache across every job thread: a wedged L2
        # round trip must stall only overlapping prefetches, never get/put.
        import threading

        entered = threading.Event()
        release = threading.Event()

        class SlowRemote:
            alive = True

            def multi_get(self, keys):
                entered.set()
                release.wait(10)
                return {}

        cache = ProofCache(None, remote=SlowRemote())
        cache.put("hot", proved=True, elapsed_s=0.1)
        fetcher = threading.Thread(target=cache.prefetch, args=(["cold"],))
        fetcher.start()
        try:
            assert entered.wait(10), "prefetch never reached the remote"
            done = threading.Event()

            def read():
                if cache.get("hot", "") is not None:
                    done.set()

            reader = threading.Thread(target=read)
            reader.start()
            assert done.wait(2), "get() blocked behind the remote multi_get"
            reader.join(10)
        finally:
            release.set()
            fetcher.join(10)


class TestRobustness:
    def test_corrupted_file_recovered(self, tmp_path):
        # A corrupt pre-CAS monolithic file contributes nothing, never
        # crashes, and is moved aside so it is not re-read forever.
        path = tmp_path / CACHE_FILENAME
        path.write_text('{"schema": 1, "entries": {truncated')
        cache = ProofCache(tmp_path)
        assert len(cache) == 0
        cache.put("k", proved=True, elapsed_s=0.5)
        cache.save()
        assert not path.exists()
        assert len(ProofCache(tmp_path)) == 1

    def test_corrupted_object_treated_as_absent(self, tmp_path):
        cache = ProofCache(tmp_path)
        cache.put("deadbeef", proved=True, elapsed_s=0.5)
        cache.save()
        obj = tmp_path / "objects" / "de" / "deadbeef.json"
        obj.write_text("{not json")
        fresh = ProofCache(tmp_path)
        assert fresh.get("deadbeef", "") is None
        assert fresh.stats.misses == 1

    def test_wrong_schema_ignored(self, tmp_path):
        path = tmp_path / CACHE_FILENAME
        path.write_text(json.dumps({"schema": 999, "entries": {"k": {}}}))
        assert len(ProofCache(tmp_path)) == 0

    def test_missing_directory_created_on_save(self, tmp_path):
        root = tmp_path / "deep" / "nested"
        cache = ProofCache(root)
        cache.put("k", proved=True, elapsed_s=0.1)
        cache.save()
        assert (root / "objects" / "k" / "k.json").exists()
        assert len(ProofCache(root)) == 1

    def test_save_without_changes_is_noop(self, tmp_path):
        cache = ProofCache(tmp_path)
        cache.save()
        assert not (tmp_path / "objects").exists()
        assert not (tmp_path / CACHE_FILENAME).exists()

    def test_direct_json_path_accepted(self, tmp_path):
        cache = ProofCache(tmp_path / "verdicts.json")
        cache.put("k", proved=True, elapsed_s=0.1)
        cache.save()
        assert (tmp_path / "verdicts.json").exists()
        assert len(ProofCache(tmp_path / "verdicts.json")) == 1

    def test_existing_plain_file_treated_as_cache_file(self, tmp_path):
        # ``--cache-dir some-existing-file`` must not crash trying to mkdir
        # over the file; the path is taken as the cache file itself.
        path = tmp_path / "cachefile"
        path.write_text("not json at all")
        cache = ProofCache(path)
        assert len(cache) == 0
        cache.put("k", proved=True, elapsed_s=0.1)
        cache.save()
        assert len(ProofCache(path)) == 1

    def test_unwritable_location_degrades_to_warning(self, tmp_path, capsys):
        # Persisting into a location whose parent is a plain file cannot
        # succeed; verification results must survive anyway.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        cache = ProofCache(blocker / "sub")  # parent path is a file
        cache.put("k", proved=True, elapsed_s=0.1)
        cache.save()  # must not raise
        assert "[proof-cache] not persisted" in capsys.readouterr().err


class TestMigration:
    def _monolithic(self, path, entries):
        payload = {
            "schema": SCHEMA_VERSION,
            "entries": {
                k: {"proved": True, "elapsed_s": 0.1, "context": [],
                    "config": "", "backend": "internal"}
                for k in entries
            },
        }
        path.write_text(json.dumps(payload))

    def test_monolithic_migrated_once(self, tmp_path, capsys):
        legacy = tmp_path / CACHE_FILENAME
        self._monolithic(legacy, ["aaaa", "bbbb"])
        cache = ProofCache(tmp_path)
        err = capsys.readouterr().err
        assert "migrated 2 verdict(s)" in err
        assert not legacy.exists()
        assert (tmp_path / (CACHE_FILENAME + ".migrated")).exists()
        assert cache.get("aaaa", "") is not None
        assert (tmp_path / "objects" / "aa" / "aaaa.json").exists()
        # Second open: nothing left to migrate, no message.
        again = ProofCache(tmp_path)
        assert "migrated" not in capsys.readouterr().err
        assert again.get("bbbb", "") is not None

    def test_migration_does_not_clobber_newer_objects(self, tmp_path):
        cas = ProofCache(tmp_path)
        cas.put("aaaa", proved=False, elapsed_s=0.1, config_fp="newer")
        cas.save()
        self._monolithic(tmp_path / CACHE_FILENAME, ["aaaa", "bbbb"])
        fresh = ProofCache(tmp_path)
        hit = fresh.get("aaaa", "newer")
        assert hit is not None and not hit.proved  # the CAS object won
        assert fresh.get("bbbb", "") is not None  # the new key was imported


class TestConcurrentWriters:
    """Two caches over one location must union, not clobber (the old
    monolithic save was last-writer-wins over the *whole file*)."""

    def test_monolithic_interleaved_saves_merge(self, tmp_path):
        path = tmp_path / "verdicts.json"
        a = ProofCache(path)
        b = ProofCache(path)  # loaded before a saves: sees an empty file
        a.put("ka", proved=True, elapsed_s=0.1)
        b.put("kb", proved=True, elapsed_s=0.2)
        a.save()
        b.save()  # must re-read and merge, not overwrite with {kb}
        merged = ProofCache(path)
        assert merged.get("ka", "") is not None
        assert merged.get("kb", "") is not None

    def test_monolithic_fresh_put_beats_file(self, tmp_path):
        path = tmp_path / "verdicts.json"
        a = ProofCache(path)
        b = ProofCache(path)
        a.put("k", proved=False, elapsed_s=0.1, config_fp="old")
        a.save()
        b.put("k", proved=False, elapsed_s=0.2, config_fp="new")
        b.save()  # b's verdict for k is fresher than the file's
        assert ProofCache(path).get("k", "new") is not None

    def test_cas_interleaved_saves_union(self, tmp_path):
        a = ProofCache(tmp_path)
        b = ProofCache(tmp_path)
        a.put("ka", proved=True, elapsed_s=0.1)
        b.put("kb", proved=True, elapsed_s=0.2)
        a.save()
        b.save()
        merged = ProofCache(tmp_path)
        assert merged.get("ka", "") is not None
        assert merged.get("kb", "") is not None


class TestIdempotentPut:
    def test_identical_put_skips_store(self, tmp_path):
        cache = ProofCache(tmp_path)
        cache.put("k", proved=True, elapsed_s=0.5)
        cache.save()
        obj = tmp_path / "objects" / "k" / "k.json"
        before = obj.stat().st_mtime_ns
        # Same verdict, different timing: semantically identical.
        cache.put("k", proved=True, elapsed_s=9.9)
        assert cache.stats.stores == 1
        cache.save()
        assert obj.stat().st_mtime_ns == before

    def test_changed_verdict_still_stored(self, tmp_path):
        cache = ProofCache(tmp_path)
        cache.put("k", proved=False, elapsed_s=0.5, config_fp="a")
        cache.put("k", proved=False, elapsed_s=0.5, config_fp="b")
        assert cache.stats.stores == 2
        assert cache.get("k", "b") is not None


class TestStatsSplit:
    def test_absent_counts_as_miss(self, tmp_path):
        cache = ProofCache(tmp_path)
        assert cache.get("nope", "fp") is None
        assert (cache.stats.misses, cache.stats.stale) == (1, 0)

    def test_unreplayable_counts_as_stale(self, tmp_path):
        cache = ProofCache(tmp_path)
        cache.put("k", proved=False, elapsed_s=0.1, config_fp="small")
        assert cache.get("k", "big") is None
        assert (cache.stats.misses, cache.stats.stale) == (0, 1)
        assert "1 stale" in str(cache.stats)
