"""The versioned wire schema (docs/SERVICE.md).

The contract under test: one serialization shared by the daemon, the CLI
``--json`` output, and the ``to_wire()``/``from_wire()`` methods on every
public options/result type — round trips reproduce ``canonical()``
byte-identically, unknown fields are ignored (additive evolution), and a
newer ``schema_version`` is a loud :class:`WireError`, never a misparse.
"""

import json

import pytest

from repro.api import (
    EngineOptions,
    ProverOptions,
    RunResult,
    SuiteReport,
    VerifyOptions,
)
from repro.prover import ProverStats
from repro.service.wire import (
    WIRE_VERSION,
    WireError,
    decode_envelope,
    dumps,
    envelope,
    prover_stats_from_wire,
    prover_stats_to_wire,
)
from repro.verify.checker import ObligationResult, SoundnessReport


def _report() -> SoundnessReport:
    dep = SoundnessReport("constValue")
    dep.results = [
        ObligationResult("A1", True, 0.5, [], backend="internal"),
        ObligationResult("A2", True, 0.25, [], cached=True),
    ]
    report = SoundnessReport("constProp")
    report.dependencies = [dep]
    stats = ProverStats()
    stats.decisions = 7
    stats.kernel = "flat-py"
    report.results = [
        ObligationResult("F1", True, 1.0, [], stats=stats),
        ObligationResult(
            "F2", False, 2.0, ["in case F2[assign]:", "counterexample"],
            backend="smtlib:z3",
        ),
    ]
    return report


class TestEnvelope:
    def test_envelope_carries_version_and_kind(self):
        doc = envelope("thing", {"a": 1})
        assert doc["schema_version"] == WIRE_VERSION
        assert doc["kind"] == "thing"
        assert doc["a"] == 1

    def test_newer_version_is_refused(self):
        doc = envelope("thing", {})
        doc["schema_version"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="newer"):
            decode_envelope(doc)

    def test_older_or_equal_versions_decode(self):
        doc = envelope("thing", {})
        assert decode_envelope(doc, "thing") is doc

    def test_kind_mismatch_is_refused(self):
        with pytest.raises(WireError, match="expected wire kind"):
            decode_envelope(envelope("suite-report", {}), "soundness-report")

    def test_non_dict_is_refused(self):
        with pytest.raises(WireError):
            decode_envelope([1, 2, 3])

    def test_missing_version_is_refused(self):
        with pytest.raises(WireError, match="schema_version"):
            decode_envelope({"kind": "thing"})

    def test_reserved_keys_cannot_be_clobbered(self):
        # The payload is flattened into the envelope: a payload "kind"
        # would silently misroute every decoder (this bit the Job
        # document, whose job kind now travels as "job_kind").
        with pytest.raises(WireError, match="reserved"):
            envelope("job", {"kind": "suite"})
        with pytest.raises(WireError, match="reserved"):
            envelope("job", {"schema_version": 0})

    def test_dumps_is_deterministic_and_json(self):
        doc = envelope("thing", {"z": 1, "a": [2, 3]})
        text = dumps(doc)
        assert text == dumps(dict(reversed(list(doc.items()))))
        assert json.loads(text) == doc


class TestReportRoundTrips:
    def test_soundness_report_canonical_is_byte_identical(self):
        report = _report()
        back = SoundnessReport.from_wire(report.to_wire())
        assert back.canonical() == report.canonical()
        assert back.sound == report.sound
        assert [r.obligation for r in back.results] == ["F1", "F2"]
        assert back.results[1].context == report.results[1].context
        assert back.results[0].stats.decisions == 7
        assert back.results[0].stats.kernel == "flat-py"

    def test_error_report_round_trips(self):
        report = SoundnessReport("bad", error="translation failed")
        back = SoundnessReport.from_wire(report.to_wire())
        assert back.canonical() == report.canonical()
        assert not back.sound

    def test_suite_report_canonical_is_byte_identical(self):
        suite = SuiteReport(
            reports=[_report(), SoundnessReport("x", error="nope")],
            elapsed_s=3.25,
            backend="internal",
        )
        back = SuiteReport.from_wire(suite.to_wire())
        assert back.canonical() == suite.canonical()
        assert back.backend == "internal"
        assert back.elapsed_s == 3.25

    def test_obligation_result_round_trips(self):
        result = ObligationResult(
            "F3", False, 0.75, ["ctx line"], cached=True, backend="portfolio"
        )
        back = ObligationResult.from_wire(result.to_wire())
        assert back.obligation == "F3"
        assert back.proved is False
        assert back.cached is True
        assert back.backend == "portfolio"
        assert back.context == ["ctx line"]

    def test_unknown_fields_are_ignored(self):
        doc = _report().to_wire()
        doc["a_future_field"] = {"nested": True}
        doc["results"][0]["another_future_field"] = 9
        back = SoundnessReport.from_wire(doc)
        assert back.canonical() == _report().canonical()

    def test_json_round_trip_through_text(self):
        report = _report()
        text = dumps(report.to_wire())
        back = SoundnessReport.from_wire(json.loads(text))
        assert back.canonical() == report.canonical()


class TestStatsRoundTrip:
    def test_counters_survive(self):
        stats = ProverStats()
        stats.decisions = 11
        stats.rounds = 3
        stats.elapsed_s = 0.5
        back = prover_stats_from_wire(prover_stats_to_wire(stats))
        assert back.decisions == 11
        assert back.rounds == 3
        assert back.elapsed_s == 0.5

    def test_round_log_stays_local(self):
        stats = ProverStats()
        stats.round_log.append(("something", 1))
        doc = prover_stats_to_wire(stats)
        assert "round_log" not in doc


class TestOptionsRoundTrips:
    def test_verify_options_round_trip(self):
        options = VerifyOptions(
            backend="portfolio",
            solver_cmd="z3 -smt2",
            jobs=4,
            cache_dir="/tmp/cache",
            cache_url="http://localhost:8417",
            obligation_timeout_s=12.5,
            prover=ProverOptions(mode="reference", timeout_s=9.0),
        )
        back = VerifyOptions.from_wire(options.to_wire())
        assert back == options

    def test_verify_options_defaults_fill_missing(self):
        doc = envelope("verify-options", {"backend": "smtlib"})
        back = VerifyOptions.from_wire(doc)
        assert back.backend == "smtlib"
        assert back.jobs == VerifyOptions().jobs
        assert back.prover == ProverOptions()

    def test_prover_options_round_trip(self):
        options = ProverOptions(mode="reference", kernel="reference",
                                timeout_s=1.0, max_rounds=2)
        assert ProverOptions.from_wire(options.to_wire()) == options

    def test_engine_options_round_trip(self):
        options = EngineOptions(mode="reference", iterate=True,
                                collect_stats=True)
        assert EngineOptions.from_wire(options.to_wire()) == options


class TestRunResultRoundTrip:
    def test_program_and_sites_survive(self):
        from repro.il import parse_program
        from repro.il.printer import program_to_str

        program = parse_program(
            "main(n) {\n  decl a;\n  a := 2;\n  return a;\n}\n"
        )
        result = RunResult(
            program=program, sites={"main": [1, 3]}, report=_report()
        )
        back = RunResult.from_wire(result.to_wire())
        assert program_to_str(back.program) == program_to_str(program)
        assert back.sites == {"main": [1, 3]}
        assert back.report.canonical() == _report().canonical()

    def test_empty_result_round_trips(self):
        back = RunResult.from_wire(RunResult(program=None).to_wire())
        assert back.program is None
        assert back.sites == {}
        assert back.report is None
