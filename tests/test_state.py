"""Unit tests for execution-state components (Env, Store, Allocator, State)."""

import pytest

from repro.il.state import Allocator, Env, Frame, Loc, State, Store


class TestEnv:
    def test_bind_and_lookup(self):
        env = Env().bind("x", Loc("stack", 0))
        assert env.lookup("x") == Loc("stack", 0)
        assert env.lookup("y") is None
        assert "x" in env and "y" not in env

    def test_rebind_replaces(self):
        env = Env().bind("x", Loc("stack", 0)).bind("x", Loc("stack", 1))
        assert env.lookup("x") == Loc("stack", 1)

    def test_binding_is_functional(self):
        env = Env().bind("x", Loc("stack", 0))
        env2 = env.bind("y", Loc("stack", 1))
        assert env.lookup("y") is None
        assert env2.lookup("x") == Loc("stack", 0)

    def test_equality_is_order_independent(self):
        e1 = Env().bind("a", Loc("stack", 0)).bind("b", Loc("stack", 1))
        e2 = Env().bind("b", Loc("stack", 1)).bind("a", Loc("stack", 0))
        assert e1 == e2


class TestStore:
    def test_update_and_lookup(self):
        store = Store().update(Loc("heap", 0), 42)
        assert store.lookup(Loc("heap", 0)) == 42
        assert store.lookup(Loc("heap", 1)) is None

    def test_remove_all(self):
        store = Store().update(Loc("stack", 0), 1).update(Loc("stack", 1), 2)
        cleared = store.remove_all([Loc("stack", 0)])
        assert cleared.lookup(Loc("stack", 0)) is None
        assert cleared.lookup(Loc("stack", 1)) == 2

    def test_agrees_except(self):
        base = Store().update(Loc("stack", 0), 1).update(Loc("stack", 1), 2)
        changed = base.update(Loc("stack", 0), 99)
        assert base.agrees_except(changed, Loc("stack", 0))
        assert not base.agrees_except(changed, Loc("stack", 1))
        assert base.agrees_except(base, None)

    def test_agrees_except_detects_missing_keys(self):
        base = Store().update(Loc("stack", 0), 1)
        bigger = base.update(Loc("stack", 1), 2)
        assert not base.agrees_except(bigger, Loc("stack", 0))
        assert base.agrees_except(bigger, Loc("stack", 1))


class TestAllocator:
    def test_fresh_locations_distinct(self):
        alloc = Allocator()
        l1, alloc = alloc.fresh("stack")
        l2, alloc = alloc.fresh("stack")
        h1, alloc = alloc.fresh("heap")
        assert l1 != l2
        assert l1 != h1

    def test_kinds_have_independent_counters(self):
        alloc = Allocator()
        s, alloc = alloc.fresh("stack")
        h, alloc = alloc.fresh("heap")
        assert s.number == 0 and h.number == 0
        assert s != h  # kinds differ

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Allocator().fresh("register")


class TestStateEquality:
    def _state(self, store):
        env = Env().bind("x", Loc("stack", 0)).bind("y", Loc("stack", 1))
        return State("main", 3, env, store, (), Allocator(2, 0))

    def test_equal_except_var(self):
        s1 = self._state(Store().update(Loc("stack", 0), 1).update(Loc("stack", 1), 2))
        s2 = self._state(Store().update(Loc("stack", 0), 9).update(Loc("stack", 1), 2))
        assert s1.equal_except_var(s2, "x")
        assert not s1.equal_except_var(s2, "y")
        assert s1.equal_except_var(s1, "x")

    def test_differing_index_rejected(self):
        s1 = self._state(Store())
        s2 = State(s1.proc_name, 4, s1.env, s1.store, s1.stack, s1.alloc)
        assert not s1.equal_except_var(s2, "x")

    def test_differing_stack_rejected(self):
        s1 = self._state(Store())
        frame = Frame("main", 0, Env(), "r")
        s2 = State(s1.proc_name, s1.index, s1.env, s1.store, (frame,), s1.alloc)
        assert not s1.equal_except_var(s2, "x")

    def test_read_var(self):
        s = self._state(Store().update(Loc("stack", 0), 7))
        assert s.read_var("x") == 7
        assert s.read_var("y") is None  # no cell
        assert s.read_var("zz") is None  # unbound
