"""Prover backends (repro.prover.backends, repro.verify.smtlib).

The contract under test, per docs/BACKENDS.md:

* SMT-LIB2 emission produces well-formed ``(set-logic UF)`` scripts whose
  ``unsat`` answers are sound to trust;
* the solver subprocess discipline is robust — missing binaries, crashes
  mid-stream, malformed output, hung solvers, and retry exhaustion all
  produce structured outcomes, never exceptions or hangs;
* the portfolio merge is a pure function of the two backends' answers
  (byte-identical canonical reports across runs);
* backend resolution degrades gracefully to internal when no solver
  exists, with a single warning;
* the proof cache replays internal proofs for any backend but scopes
  external verdicts to the producing solver identity.

Everything here runs with *scripted fake solvers* (small Python programs
standing in for z3), so no SMT solver needs to be installed; the one
cross-check against a real solver is skipped when none is available.
"""

import subprocess
import sys
import time

import pytest

from repro.cobalt.labels import standard_registry
from repro.prover import ProverConfig
from repro.prover.backends import (
    BackendSpec,
    InternalBackend,
    PortfolioBackend,
    SmtLibBackend,
    SolverRunner,
    discover_solver,
    parse_solver_output,
    resolve_backend,
    worker_spec,
)
from repro.verify.cache import CachedVerdict
from repro.verify.obligations import ObligationBuilder
from repro.verify.smtlib import emit_obligation, emit_script
from repro.opts import const_fold, const_prop
from repro.opts.buggy import copy_prop_no_target_check

FAST = ProverConfig(timeout_s=60.0)


def _obligations(pattern):
    return ObligationBuilder(standard_registry()).forward_obligations(pattern)


@pytest.fixture()
def fake_solver(tmp_path):
    """A factory for scripted stand-in solvers: returns an argv tuple."""

    counter = [0]

    def make(body: str):
        counter[0] += 1
        script = tmp_path / f"solver{counter[0]}.py"
        script.write_text("import sys, os, time\n" + body)
        return (sys.executable, str(script))

    return make


# ---------------------------------------------------------------------------
# Output parsing
# ---------------------------------------------------------------------------


class TestParseSolverOutput:
    def test_unsat(self):
        assert parse_solver_output("unsat\n") == ("unsat", ())

    def test_sat_with_model(self):
        verdict, model = parse_solver_output("sat\n(model\n  (f 1)\n)\n")
        assert verdict == "sat"
        assert "(model" in model[0]

    def test_warnings_before_verdict_ignored(self):
        verdict, _ = parse_solver_output('(warning "x")\nunsat\n')
        assert verdict == "unsat"

    def test_error_lines_not_model(self):
        verdict, model = parse_solver_output('sat\n(error "no model")\n')
        assert verdict == "sat"
        assert model == ()

    def test_garbage_has_no_verdict(self):
        assert parse_solver_output("hello world\n")[0] is None

    def test_unsatisfied_is_not_unsat(self):
        # token lines only: a prefix match would misread solver chatter
        assert parse_solver_output("unsatisfied\n")[0] is None

    def test_trailing_chatter_after_unsat_is_not_a_model(self):
        # Model lines exist only after ``sat``; statistics or ``(error "no
        # model")`` spam after unsat/unknown must never be captured.
        verdict, model = parse_solver_output(
            "unsat\n(:rlimit-count 1234)\n(objectives)\n"
        )
        assert verdict == "unsat"
        assert model == ()

    def test_trailing_chatter_after_unknown_is_not_a_model(self):
        verdict, model = parse_solver_output(
            "unknown\n(:reason-unknown incomplete)\n"
        )
        assert verdict == "unknown"
        assert model == ()


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------


class TestEmission:
    def test_scripts_well_formed(self):
        obligations = _obligations(const_prop.pattern)
        scripts = emit_obligation(obligations[0])
        assert scripts, "kind split must produce at least one script"
        for script in scripts:
            assert script.text.count("(") == script.text.count(")")
            assert "(set-logic UF)" in script.text
            assert "(check-sat)" in script.text
            assert "(assert (not " in script.text  # goal is negated

    def test_one_script_per_statement_kind(self):
        from repro.verify import encode as E

        obligations = _obligations(const_prop.pattern)
        with_split = [ob for ob in obligations if ob.split_term is not None]
        assert with_split, "F obligations case-split on the statement kind"
        scripts = emit_obligation(with_split[0])
        assert len(scripts) == len(E.STMT_KINDS)

    def test_declarations_unique(self):
        scripts = emit_obligation(_obligations(const_prop.pattern)[0])
        for script in scripts:
            decls = [
                line.split()[1]
                for line in script.text.splitlines()
                if line.startswith("(declare-fun")
            ]
            assert len(decls) == len(set(decls)), "duplicate declare-fun"

    def test_real_solver_accepts_and_agrees(self):
        # Cross-check against a real SMT solver when one is installed: every
        # obligation of a sound optimization the internal prover discharges
        # must come back unsat (the emission never weakens soundly-provable
        # goals into sat).
        cmd = discover_solver()
        if cmd is None:
            pytest.skip("no SMT solver installed")
        spec = BackendSpec(name="smtlib", solver_cmd=cmd, solver_timeout_s=60.0)
        backend = SmtLibBackend(spec, FAST)
        for ob in _obligations(const_fold.pattern):
            result = backend.discharge("constFold", ob)
            assert result.proved, (ob.name, result.context)


# ---------------------------------------------------------------------------
# Subprocess discipline
# ---------------------------------------------------------------------------


class TestSolverRunner:
    def test_missing_binary_is_immediate_error(self):
        runner = SolverRunner(("/nonexistent/solver-xyz",), retries=3)
        outcome = runner.check("(check-sat)\n")
        assert outcome.status == "error"
        assert outcome.attempts == 1, "a missing binary must not be retried"

    def test_timeout_kills_the_solver(self, fake_solver):
        cmd = fake_solver("time.sleep(60)\n")
        runner = SolverRunner(cmd, timeout_s=0.3, retries=2)
        start = time.monotonic()
        outcome = runner.check("(check-sat)\n")
        assert outcome.status == "timeout"
        assert "killed" in outcome.detail
        assert outcome.attempts == 1, "timeouts must not be retried"
        assert time.monotonic() - start < 10.0

    def test_malformed_output_not_retried(self, fake_solver):
        cmd = fake_solver("print('certainly!')\n")
        runner = SolverRunner(cmd, retries=5, backoff_s=0.0)
        outcome = runner.check("(check-sat)\n")
        assert outcome.status == "error"
        assert "malformed" in outcome.detail
        assert outcome.attempts == 1, "deterministic garbage must not be retried"

    def test_crash_mid_stream_retries_until_exhausted(self, fake_solver):
        cmd = fake_solver(
            "sys.stdout.write('(partial')\nsys.stdout.flush()\nsys.exit(3)\n"
        )
        runner = SolverRunner(cmd, retries=2, backoff_s=0.0)
        outcome = runner.check("(check-sat)\n")
        assert outcome.status == "error"
        assert outcome.attempts == 3  # 1 try + 2 retries
        assert "attempt" in outcome.detail

    def test_transient_crash_recovers_on_retry(self, fake_solver, tmp_path):
        marker = tmp_path / "crashed-once"
        cmd = fake_solver(
            f"m = {str(marker)!r}\n"
            "if not os.path.exists(m):\n"
            "    open(m, 'w').close()\n"
            "    sys.exit(1)\n"
            "print('unsat')\n"
        )
        runner = SolverRunner(cmd, retries=2, backoff_s=0.0)
        outcome = runner.check("(check-sat)\n")
        assert outcome.status == "unsat"
        assert outcome.attempts == 2

    def test_cancellation_stops_promptly(self, fake_solver):
        cmd = fake_solver("time.sleep(60)\n")
        runner = SolverRunner(cmd, timeout_s=30.0, retries=0)
        start = time.monotonic()
        outcome = runner.check("(check-sat)\n", cancel=lambda: True)
        assert outcome.status == "cancelled"
        assert time.monotonic() - start < 5.0

    def test_cancel_consulted_before_retry_backoff(self, tmp_path):
        # A directory as the solver command makes every spawn fail with
        # EACCES — the one failure mode whose retry loop never enters the
        # process-poll loop, so the *backoff path itself* must consult the
        # cancellation hook.  A decided race must not sit through the
        # whole backoff schedule against an unspawnable solver.
        runner = SolverRunner((str(tmp_path),), retries=5, backoff_s=5.0)
        start = time.monotonic()
        outcome = runner.check("(check-sat)\n", cancel=lambda: True)
        assert outcome.status == "cancelled"
        assert outcome.attempts == 1, "cancelled before the first retry"
        assert time.monotonic() - start < 4.0, "no backoff was slept"

    def test_unsat_with_trailing_output_has_no_model(self, fake_solver):
        # end-to-end twin of the parser test: a solver that prints
        # statistics after its verdict still yields an empty model
        cmd = fake_solver("print('unsat')\nprint('(:memory 12.34)')\n")
        outcome = SolverRunner(cmd).check("(check-sat)\n")
        assert outcome.status == "unsat"
        assert outcome.model == ()


# ---------------------------------------------------------------------------
# The smtlib backend
# ---------------------------------------------------------------------------


class TestSmtLibBackend:
    def _backend(self, cmd, timeout_s=30.0):
        spec = BackendSpec(
            name="smtlib", solver_cmd=cmd, solver_timeout_s=timeout_s
        )
        return SmtLibBackend(spec, FAST)

    def test_all_unsat_proves(self, fake_solver):
        backend = self._backend(fake_solver("print('unsat')\n"))
        ob = _obligations(const_fold.pattern)[0]
        result = backend.discharge("constFold", ob)
        assert result.proved
        assert result.backend.startswith("smtlib;")

    def test_sat_reports_countermodel(self, fake_solver):
        backend = self._backend(
            fake_solver("print('sat')\nprint('(model (x 1))')\n")
        )
        ob = _obligations(const_fold.pattern)[0]
        result = backend.discharge("constFold", ob)
        assert not result.proved
        assert any("countermodel" in line for line in result.context)
        assert any("(model (x 1))" in line for line in result.context)

    def test_unknown_is_inconclusive(self, fake_solver):
        backend = self._backend(fake_solver("print('unknown')\n"))
        ob = _obligations(const_fold.pattern)[0]
        proved, conclusive, context = backend.run_cases(ob)
        assert not proved and not conclusive
        assert any("unknown" in line for line in context)

    def test_zero_cases_is_an_error_not_a_vacuous_proof(
        self, fake_solver, monkeypatch
    ):
        # An obligation whose case analysis is empty must never be
        # "proved" by an all-of-nothing loop — emptying the statement-kind
        # table turns every split obligation into exactly that trap.
        from repro.verify import encode as E

        monkeypatch.setattr(E, "STMT_KINDS", ())
        backend = self._backend(fake_solver("print('unsat')\n"))
        ob = next(
            o for o in _obligations(const_prop.pattern)
            if o.split_term is not None
        )
        proved, conclusive, context = backend.run_cases(ob)
        assert not proved and not conclusive
        assert any("no proof cases" in line for line in context)

    def test_zero_cases_internal_discharge_mirrors(self, monkeypatch):
        # Same contract on the internal path (shared by pool workers).
        from repro.verify import encode as E
        from repro.verify.checker import discharge_obligation
        from repro.verify.parallel import build_prover

        ob = next(
            o for o in _obligations(const_prop.pattern)
            if o.split_term is not None
        )
        monkeypatch.setattr(E, "STMT_KINDS", ())
        result = discharge_obligation(build_prover(FAST), "constProp", ob, FAST)
        assert not result.proved
        assert any("no proof cases" in line for line in result.context)


# ---------------------------------------------------------------------------
# Version probing
# ---------------------------------------------------------------------------


class TestSolverVersion:
    def test_transient_probe_failure_is_not_cached(self, tmp_path):
        # The probe fails once (machine blip), then answers.  Caching the
        # failure would brand the solver "unknown" for the whole process —
        # and silently demote every cached proof it produces to
        # config-scoped replay.
        from repro.prover.backends.smtlib import solver_version

        counter = tmp_path / "probes"
        script = tmp_path / "solver"
        script.write_text(
            f"#!{sys.executable}\n"
            "import os, sys\n"
            f"c = {str(counter)!r}\n"
            "n = int(open(c).read()) if os.path.exists(c) else 0\n"
            "open(c, 'w').write(str(n + 1))\n"
            # one solver_version call probes two argv shapes: fail both
            "if n < 2:\n"
            "    sys.exit(1)\n"
            "print('fakesolver 1.0')\n"
        )
        script.chmod(0o755)
        cmd = (str(script),)
        assert solver_version(cmd) == "unknown"
        assert solver_version(cmd) == "fakesolver 1.0", (
            "a failed probe must not poison the version cache"
        )
        # …and the success *is* cached (later probes never run)
        probes = int(counter.read_text())
        assert solver_version(cmd) == "fakesolver 1.0"
        assert int(counter.read_text()) == probes


# ---------------------------------------------------------------------------
# Resolution and degradation
# ---------------------------------------------------------------------------


class TestResolveBackend:
    def test_internal_by_default(self):
        backend = resolve_backend(BackendSpec(), FAST)
        assert isinstance(backend, InternalBackend)
        assert backend.identity().startswith("internal;")

    def test_missing_solver_degrades_with_warning(self, monkeypatch, capsys):
        import repro.prover.backends.base as base

        monkeypatch.setattr(base, "discover_solver", lambda: None)
        monkeypatch.setattr(base, "_WARNED", set())
        backend = resolve_backend(BackendSpec(name="smtlib"), FAST)
        assert isinstance(backend, InternalBackend)
        err = capsys.readouterr().err
        assert "no SMT solver found" in err
        # …and only once per process:
        resolve_backend(BackendSpec(name="portfolio"), FAST)
        resolve_backend(BackendSpec(name="smtlib"), FAST)
        again = capsys.readouterr().err
        assert again.count("no SMT solver found") <= 1

    def test_portfolio_resolves_both_legs(self, fake_solver):
        cmd = fake_solver("print('unsat')\n")
        spec = BackendSpec(name="portfolio", solver_cmd=cmd)
        backend = resolve_backend(spec, FAST)
        assert isinstance(backend, PortfolioBackend)
        assert "portfolio(" in backend.identity()
        assert "smtlib;" in backend.identity()

    def test_worker_spec_carries_resolved_command(self, fake_solver):
        cmd = fake_solver("print('unsat')\n")
        backend = resolve_backend(
            BackendSpec(name="portfolio", solver_cmd=cmd), FAST
        )
        spec = worker_spec(backend)
        assert spec.name == "portfolio"
        assert spec.solver_cmd == tuple(cmd)
        # worker specs must survive pickling into pool workers
        import pickle

        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError):
            BackendSpec(name="simplify")


# ---------------------------------------------------------------------------
# Portfolio semantics
# ---------------------------------------------------------------------------


class TestPortfolio:
    def _portfolio(self, cmd, timeout_s=30.0):
        spec = BackendSpec(
            name="portfolio", solver_cmd=cmd, solver_timeout_s=timeout_s
        )
        return resolve_backend(spec, FAST)

    def test_internal_proof_wins_over_slow_solver(self, fake_solver):
        # The external racer never answers inside its budget; the internal
        # prover's verdict must come back without waiting for it.
        backend = self._portfolio(fake_solver("time.sleep(60)\n"), timeout_s=2.0)
        ob = _obligations(const_fold.pattern)[0]
        start = time.monotonic()
        result = backend.discharge("constFold", ob)
        assert result.proved
        assert result.backend.startswith("internal;")
        assert time.monotonic() - start < 30.0

    def test_external_sat_never_flips_an_internal_proof(self, fake_solver):
        # The emission is an abstraction: external ``sat`` is evidence, not
        # a disproof, and must lose to an internal proof deterministically.
        backend = self._portfolio(fake_solver("print('sat')\n"))
        ob = _obligations(const_fold.pattern)[0]
        result = backend.discharge("constFold", ob)
        assert result.proved

    def test_external_proof_rescues_internal_failure(self, fake_solver):
        # The buggy pattern is internally unprovable; a (scripted) external
        # proof must carry the obligation, attributed to the solver.
        backend = self._portfolio(fake_solver("print('unsat')\n"))
        ob = _obligations(copy_prop_no_target_check.pattern)[1]
        result = backend.discharge("copyProp", ob)
        assert result.proved
        assert result.backend.startswith("smtlib;")

    def test_external_countermodel_reported_when_internal_fails(
        self, fake_solver
    ):
        backend = self._portfolio(
            fake_solver("print('sat')\nprint('(model)')\n")
        )
        ob = _obligations(copy_prop_no_target_check.pattern)[1]
        result = backend.discharge("copyProp", ob)
        assert not result.proved
        assert any("countermodel" in line for line in result.context)

    def test_budget_covers_every_case_of_a_split_obligation(self, fake_solver):
        # A kind-split obligation runs one solver query per statement
        # kind.  The post-internal wait must budget per *case* — waiting a
        # single solver_timeout_s would cut off an external racer that is
        # steadily proving a seven-case obligation at 0.4s/case.
        from repro.verify.checker import ObligationResult

        class _FailsFast:
            def identity(self):
                return "internal;stub"

            def discharge(self, owner, obligation, cancel=None):
                return ObligationResult(obligation.name, False, 0.0, ["<stub>"])

            def close(self):
                pass

        external = SmtLibBackend(
            BackendSpec(
                name="smtlib",
                solver_cmd=fake_solver("time.sleep(0.4)\nprint('unsat')\n"),
                solver_timeout_s=0.9,
            ),
            FAST,
        )
        backend = PortfolioBackend(_FailsFast(), external)
        ob = next(
            o for o in _obligations(const_prop.pattern)
            if o.split_term is not None
        )
        result = backend.discharge("constProp", ob)
        assert result.proved, (
            "the external racer finishes every case within its per-case "
            "budget and must carry the obligation"
        )
        assert result.backend.startswith("smtlib;")

    def test_merge_is_deterministic_across_runs(self, fake_solver):
        from repro.api import ProverOptions, VerifyOptions
        from repro.verify import SoundnessChecker

        cmd = fake_solver("print('unsat')\n")
        options = VerifyOptions(
            backend="portfolio",
            solver_cmd=cmd,
            prover=ProverOptions(timeout_s=60.0),
        )

        def canonical():
            checker = SoundnessChecker(options=options)
            return checker.check_optimization(const_fold).canonical()

        first = canonical()
        assert first == canonical() == canonical()


# ---------------------------------------------------------------------------
# Checker integration and cache keying
# ---------------------------------------------------------------------------


class TestCheckerIntegration:
    def test_smtlib_checker_end_to_end(self, fake_solver):
        from repro.api import ProverOptions, VerifyOptions
        from repro.verify import SoundnessChecker

        options = VerifyOptions(
            backend="smtlib",
            solver_cmd=fake_solver("print('unsat')\n"),
            prover=ProverOptions(timeout_s=60.0),
        )
        checker = SoundnessChecker(options=options)
        report = checker.check_optimization(const_fold)
        assert report.sound
        assert all(r.backend.startswith("smtlib;") for r in report.results)

    def test_parallel_smtlib_matches_serial(self, fake_solver):
        from repro.api import ProverOptions, VerifyOptions
        from repro.verify import SoundnessChecker

        cmd = fake_solver("print('unsat')\n")
        base = dict(
            backend="smtlib",
            solver_cmd=cmd,
            prover=ProverOptions(timeout_s=60.0),
        )
        serial = SoundnessChecker(options=VerifyOptions(**base))
        parallel = SoundnessChecker(options=VerifyOptions(jobs=2, **base))
        left = serial.check_optimization(const_prop).canonical()
        right = parallel.check_optimization(const_prop).canonical()
        assert left == right

    def test_internal_proofs_replay_for_any_backend(self):
        proof = CachedVerdict(
            proved=True, elapsed_s=0.1, config="fp", backend="internal;mode=incremental"
        )
        assert proof.replayable_for("other-fp", "smtlib;cmd=z3;version=4")
        assert proof.replayable_for("fp", "portfolio(internal|smtlib)")

    def test_external_proofs_scoped_to_solver_identity(self):
        proof = CachedVerdict(
            proved=True, elapsed_s=0.1, config="fp", backend="smtlib;cmd=z3;version=4"
        )
        assert proof.replayable_for("fp", "smtlib;cmd=z3;version=4")
        # a portfolio embedding the same solver may trust the proof…
        assert proof.replayable_for(
            "fp", "portfolio(internal;mode=x|smtlib;cmd=z3;version=4)"
        )
        # …a different solver version may not.
        assert not proof.replayable_for("fp", "smtlib;cmd=z3;version=5")

    def test_unknown_version_external_proofs_are_config_scoped(self):
        # version=unknown means the build is unidentified: a solver swap
        # behind the same command would replay stale proofs if these were
        # trusted config-independently like identified builds.
        proof = CachedVerdict(
            proved=True,
            elapsed_s=0.1,
            config="fp",
            backend="smtlib;cmd=mysolver;version=unknown",
        )
        assert proof.replayable_for("fp", "smtlib;cmd=mysolver;version=unknown")
        assert not proof.replayable_for(
            "fp2", "smtlib;cmd=mysolver;version=unknown"
        )
        # a different command is rejected outright, as ever
        assert not proof.replayable_for(
            "fp", "smtlib;cmd=other;version=unknown"
        )

    def test_failures_scoped_to_config_and_backend(self):
        failure = CachedVerdict(
            proved=False, elapsed_s=0.1, config="fp", backend="internal;mode=x"
        )
        assert failure.replayable_for("fp", "internal;mode=x")
        assert not failure.replayable_for("fp2", "internal;mode=x")
        assert not failure.replayable_for("fp", "smtlib;cmd=z3;version=4")

    def test_cache_warm_across_backend_switch(self, tmp_path, fake_solver):
        # An internal run populates the cache; a later smtlib run replays
        # every proof without invoking its solver even once.
        from repro.api import ProverOptions, VerifyOptions
        from repro.verify import SoundnessChecker

        cache = str(tmp_path / "cache")
        prover = ProverOptions(timeout_s=60.0)
        internal = SoundnessChecker(
            options=VerifyOptions(cache_dir=cache, prover=prover)
        )
        assert internal.check_optimization(const_fold).sound

        cmd = fake_solver("sys.exit(7)\n")  # would fail loudly if invoked
        external = SoundnessChecker(
            options=VerifyOptions(
                backend="smtlib", solver_cmd=cmd, cache_dir=cache, prover=prover
            )
        )
        report = external.check_optimization(const_fold)
        assert report.sound
        assert all(r.cached for r in report.results)
