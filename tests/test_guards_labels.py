"""Tests for the guard formula language and the label library."""

import pytest

from repro.il.ast import Const, Var
from repro.il.cfg import Cfg
from repro.il.parser import parse_program
from repro.cobalt.guards import (
    GAnd,
    GCase,
    GEq,
    GFalse,
    GLabel,
    GNot,
    GOr,
    GTrue,
    check,
    generate,
    guard_pattern_vars,
)
from repro.cobalt.labels import (
    CaseLabel,
    LabelError,
    LabelRegistry,
    Labeling,
    NodeCtx,
    standard_registry,
)
from repro.cobalt.patterns import ConstPat, ExprPat, VarPat, parse_pattern_stmt


@pytest.fixture()
def registry():
    return standard_registry()


def ctx_for(text, index, registry, labeling=None):
    proc = parse_program(text).proc("main")
    return NodeCtx(proc, Cfg.build(proc), index, registry, labeling or Labeling())


PROGRAM = """
main(n) {
  decl a;
  decl p;
  a := 5;
  p := &a;
  *p := n;
  a := foo(n);
  if a goto 7 else 7;
  return a;
}
foo(x) {
  return x;
}
"""


class TestBuiltinLabels:
    def test_stmt_label_check(self, registry):
        ctx = ctx_for(PROGRAM, 2, registry)
        guard = GLabel("stmt", (parse_pattern_stmt("Y := C"),))
        assert check(guard, {"Y": Var("a"), "C": Const(5)}, ctx)
        assert not check(guard, {"Y": Var("a"), "C": Const(6)}, ctx)

    def test_syntactic_def(self, registry):
        label = registry.lookup("syntacticDef")
        assert label.eval((Var("a"),), ctx_for(PROGRAM, 0, registry))  # decl a
        assert label.eval((Var("a"),), ctx_for(PROGRAM, 2, registry))  # a := 5
        assert label.eval((Var("a"),), ctx_for(PROGRAM, 5, registry))  # call dest
        assert not label.eval((Var("a"),), ctx_for(PROGRAM, 3, registry))
        assert not label.eval((Var("a"),), ctx_for(PROGRAM, 4, registry))  # *p := n

    def test_may_def_conservative(self, registry):
        label = registry.lookup("mayDef")
        # Pointer stores and calls may define anything.
        assert label.eval((Var("a"),), ctx_for(PROGRAM, 4, registry))
        assert label.eval((Var("n"),), ctx_for(PROGRAM, 4, registry))
        assert label.eval((Var("n"),), ctx_for(PROGRAM, 5, registry))
        # A branch defines nothing.
        assert not label.eval((Var("a"),), ctx_for(PROGRAM, 6, registry))

    def test_may_use(self, registry):
        label = registry.lookup("mayUse")
        assert label.eval((Var("a"),), ctx_for(PROGRAM, 6, registry))  # if a
        assert label.eval((Var("a"),), ctx_for(PROGRAM, 7, registry))  # return a
        assert not label.eval((Var("p"),), ctx_for(PROGRAM, 6, registry))
        # *p := n uses p and n.
        assert label.eval((Var("p"),), ctx_for(PROGRAM, 4, registry))
        assert label.eval((Var("n"),), ctx_for(PROGRAM, 4, registry))
        # Calls may read anything (conservatively).
        assert label.eval((Var("a"),), ctx_for(PROGRAM, 5, registry))

    def test_may_use_pointer_load(self, registry):
        program = """
        main(n) {
          decl p;
          decl x;
          p := new;
          x := *p;
          return x;
        }
        """
        label = registry.lookup("mayUse")
        # A load may read any variable's cell.
        assert label.eval((Var("n"),), ctx_for(program, 3, registry))

    def test_unchanged(self, registry):
        from repro.il.ast import BinOp

        e = BinOp("+", Var("a"), Var("n"))
        label = registry.lookup("unchanged")
        assert not label.eval((e,), ctx_for(PROGRAM, 2, registry))  # a := 5 defines a
        assert not label.eval((e,), ctx_for(PROGRAM, 4, registry))  # pointer store
        assert label.eval((e,), ctx_for(PROGRAM, 6, registry))  # branch

    def test_unchanged_impure_expr(self, registry):
        from repro.il.ast import Deref

        e = Deref(Var("p"))
        label = registry.lookup("unchanged")
        # Any store-writing statement may change *p.
        assert not label.eval((e,), ctx_for(PROGRAM, 2, registry))
        assert label.eval((e,), ctx_for(PROGRAM, 6, registry))

    def test_not_tainted_consults_labeling(self, registry):
        labeling = Labeling()
        labeling.add(2, "notTainted", (Var("a"),))
        label = registry.lookup("notTainted")
        assert label.eval((Var("a"),), ctx_for(PROGRAM, 2, registry, labeling))
        assert not label.eval((Var("a"),), ctx_for(PROGRAM, 3, registry, labeling))

    def test_cell_unchanged(self, registry):
        labeling = Labeling()
        labeling.add(2, "notTainted", (Var("a"),))
        label = registry.lookup("cellUnchanged")
        # a := 5 with a notTainted cannot change *w.
        assert label.eval((Var("w"),), ctx_for(PROGRAM, 2, registry, labeling))
        # Without the taintedness fact it may.
        assert not label.eval((Var("w"),), ctx_for(PROGRAM, 2, registry))
        # Pointer stores always may.
        assert not label.eval((Var("w"),), ctx_for(PROGRAM, 4, registry, labeling))


class TestGuardEvaluation:
    def test_boolean_structure(self, registry):
        ctx = ctx_for(PROGRAM, 2, registry)
        stmt_guard = GLabel("stmt", (parse_pattern_stmt("Y := C"),))
        theta = {"Y": Var("a"), "C": Const(5)}
        assert check(GAnd((stmt_guard, GTrue())), theta, ctx)
        assert not check(GAnd((stmt_guard, GFalse())), theta, ctx)
        assert check(GOr((GFalse(), stmt_guard)), theta, ctx)
        assert check(GNot(GFalse()), theta, ctx)

    def test_term_equality(self, registry):
        ctx = ctx_for(PROGRAM, 2, registry)
        theta = {"X": Var("a"), "Y": Var("a"), "Z": Var("b")}
        assert check(GEq(VarPat("X"), VarPat("Y")), theta, ctx)
        assert not check(GEq(VarPat("X"), VarPat("Z")), theta, ctx)

    def test_case_first_match_wins(self, registry):
        case = GCase(
            (
                (parse_pattern_stmt("X := C"), GTrue()),
                (parse_pattern_stmt("X := E"), GFalse()),
            ),
            GFalse(),
        )
        assert check(case, {}, ctx_for(PROGRAM, 2, registry))  # a := 5 hits arm 1

    def test_case_default(self, registry):
        case = GCase(((parse_pattern_stmt("X := C"), GTrue()),), GLabel("stmt", (parse_pattern_stmt("return X"),)))
        assert check(case, {}, ctx_for(PROGRAM, 7, registry))

    def test_guard_pattern_vars(self):
        guard = GAnd(
            (
                GLabel("stmt", (parse_pattern_stmt("Y := C"),)),
                GNot(GLabel("mayDef", (VarPat("Y"),))),
            )
        )
        assert guard_pattern_vars(guard) == {"Y", "C"}


class TestGenerateMode:
    def test_stmt_generation(self, registry):
        ctx = ctx_for(PROGRAM, 2, registry)
        guard = GLabel("stmt", (parse_pattern_stmt("Y := C"),))
        assert generate(guard, {}, ctx) == [{"Y": Var("a"), "C": Const(5)}]

    def test_no_match_generates_nothing(self, registry):
        ctx = ctx_for(PROGRAM, 0, registry)
        guard = GLabel("stmt", (parse_pattern_stmt("Y := C"),))
        assert generate(guard, {}, ctx) == []

    def test_disjunction_generates_union(self, registry):
        ctx = ctx_for(PROGRAM, 2, registry)
        guard = GOr(
            (
                GLabel("stmt", (parse_pattern_stmt("Y := C"),)),
                GLabel("stmt", (parse_pattern_stmt("decl Y"),)),
            )
        )
        thetas = generate(guard, {}, ctx)
        assert {"Y": Var("a"), "C": Const(5)} in thetas

    def test_enumeration_for_unbound_vars(self, registry):
        # 'return X' binds nothing; X must be enumerated and filtered by
        # the not-used condition (the DAE psi1 shape).
        ctx = ctx_for(PROGRAM, 7, registry)
        guard = GAnd(
            (
                GLabel("stmt", (parse_pattern_stmt("return ..."),)),
                GNot(GLabel("mayUse", (VarPat("X"),))),
            )
        )
        thetas = generate(guard, {}, ctx)
        names = {t["X"].name for t in thetas}
        assert "a" not in names  # return a uses a
        assert "p" in names and "n" in names

    def test_generated_bindings_satisfy_check(self, registry):
        ctx = ctx_for(PROGRAM, 2, registry)
        guard = GAnd(
            (
                GLabel("stmt", (parse_pattern_stmt("Y := C"),)),
                GNot(GLabel("mayUse", (VarPat("Y"),))),
            )
        )
        for theta in generate(guard, {}, ctx):
            assert check(guard, theta, ctx)


class TestRegistry:
    def test_duplicate_definition_rejected(self, registry):
        with pytest.raises(LabelError):
            registry.define(CaseLabel("mayDef", ("Y",), GTrue()))

    def test_unknown_label_rejected(self, registry):
        with pytest.raises(LabelError):
            registry.lookup("noSuchLabel")

    def test_arity_mismatch(self, registry):
        with pytest.raises(LabelError):
            registry.lookup("mayDef").eval((), ctx_for(PROGRAM, 0, registry))

    def test_copy_is_independent(self, registry):
        clone = registry.copy()
        clone.define(CaseLabel("custom", (), GTrue()))
        with pytest.raises(LabelError):
            registry.lookup("custom")
