"""Property-based differential testing of every proven-sound optimization.

Drives :func:`repro.fuzz.differential_campaign` over many generator
seeds for each optimization in the shipped suite (all of which the
soundness checker proves sound — experiment E2), asserting the paper's
one-directional equivalence empirically: zero mismatches, ever.  A final
meta-test asserts the corpus actually *exercised* the transformations, so
a silent pass cannot come from optimizations that never fired.

Uses hypothesis when it is installed; otherwise falls back to a
deterministic seeded-random corpus of the same size.
"""

import random
from collections import Counter

import pytest

from repro.il.generator import GeneratorConfig
from repro.fuzz import differential_campaign
from repro.opts import ALL_OPTIMIZATIONS

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_HYPOTHESIS = False

#: Pointer-heavy generation for the pointer-aware optimizations; plain
#: straight-line/branchy programs for the rest.
_PTR_CONFIG = GeneratorConfig(allow_pointers=True, num_stmts=14)
_POINTER_OPTS = {"constPropPT", "loadElim"}

_EXAMPLES_PER_OPT = 10

#: transformations applied per optimization, accumulated across the run.
_TRANSFORMS = Counter()


def _config_for(opt):
    return _PTR_CONFIG if opt.name in _POINTER_OPTS else None


def _campaign(opt, seed):
    result = differential_campaign(opt, seeds=[seed], config=_config_for(opt))
    _TRANSFORMS[opt.name] += result.transformations
    assert result.ok, "\n\n".join(result.mismatches)


if HAVE_HYPOTHESIS:

    @pytest.mark.parametrize("opt", ALL_OPTIMIZATIONS, ids=lambda o: o.name)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(
        max_examples=_EXAMPLES_PER_OPT,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_no_mismatch_on_any_seed(opt, seed):
        _campaign(opt, seed)

else:

    @pytest.mark.parametrize("opt", ALL_OPTIMIZATIONS, ids=lambda o: o.name)
    def test_no_mismatch_on_any_seed(opt):
        rng = random.Random(f"diffprop:{opt.name}")
        for _ in range(_EXAMPLES_PER_OPT):
            _campaign(opt, rng.randrange(2**32))


def test_zz_corpus_exercised_transformations():
    """The corpus must have applied at least one transformation overall —
    and the workhorse optimizations must each have fired (an optimization
    that never applies makes the equivalence assertions vacuous)."""
    assert sum(_TRANSFORMS.values()) >= 1, (
        "no optimization applied a single transformation; "
        "the differential corpus proves nothing"
    )
    for name in ("constProp", "copyProp", "cse", "deadAssignElim"):
        assert _TRANSFORMS[name] >= 1, (
            f"{name} never fired across {_EXAMPLES_PER_OPT} seeds"
        )
