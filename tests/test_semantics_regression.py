"""Regression tests pinning the IL's operational semantics choices, plus a
property check of the binary-operator table against reference Python
semantics (with C-style truncating division)."""

from hypothesis import given, settings, strategies as st

from repro.il.interp import apply_binop
from repro.il.parser import parse_stmt
from repro.il.printer import stmt_to_str
from repro.il.state import Loc

ints = st.integers(-50, 50)


class TestApplyBinopProperties:
    @given(ints, ints)
    @settings(max_examples=80, deadline=None)
    def test_arith_matches_python(self, a, b):
        assert apply_binop("+", a, b) == a + b
        assert apply_binop("-", a, b) == a - b
        assert apply_binop("*", a, b) == a * b

    @given(ints, ints)
    @settings(max_examples=80, deadline=None)
    def test_truncating_division(self, a, b):
        if b == 0:
            assert apply_binop("/", a, b) is None
            assert apply_binop("%", a, b) is None
        else:
            q = apply_binop("/", a, b)
            r = apply_binop("%", a, b)
            assert q == int(a / b)  # truncation toward zero, like C
            assert a == q * b + r  # division identity
            assert abs(r) < abs(b)

    @given(ints, ints)
    @settings(max_examples=60, deadline=None)
    def test_comparisons_boolean(self, a, b):
        assert apply_binop("<", a, b) == int(a < b)
        assert apply_binop("<=", a, b) == int(a <= b)
        assert apply_binop(">", a, b) == int(a > b)
        assert apply_binop(">=", a, b) == int(a >= b)
        assert apply_binop("==", a, b) == int(a == b)
        assert apply_binop("!=", a, b) == int(a != b)

    @given(ints, ints)
    @settings(max_examples=60, deadline=None)
    def test_logical_ops(self, a, b):
        assert apply_binop("&&", a, b) == int(a != 0 and b != 0)
        assert apply_binop("||", a, b) == int(a != 0 or b != 0)

    def test_equality_on_locations(self):
        l1, l2 = Loc("heap", 0), Loc("heap", 1)
        assert apply_binop("==", l1, l1) == 1
        assert apply_binop("==", l1, l2) == 0
        assert apply_binop("!=", l1, l2) == 1
        # Mixed-type comparison is defined (and false)...
        assert apply_binop("==", l1, 5) == 0
        # ...but arithmetic and ordering on locations are errors.
        assert apply_binop("+", l1, 1) is None
        assert apply_binop("<", l1, l2) is None

    def test_unknown_operator(self):
        assert apply_binop("**", 2, 3) is None


class TestStatementPrintRoundTrip:
    STATEMENTS = [
        "skip",
        "decl x",
        "x := 5",
        "x := -3",
        "x := y",
        "x := y + z",
        "x := y * 7",
        "x := neg y",
        "x := not y",
        "x := *p",
        "x := &y",
        "*p := 9",
        "*p := y",
        "x := new",
        "x := helper(y)",
        "x := helper(3)",
        "if x goto 1 else 2",
        "if 0 goto 3 else 4",
        "return x",
    ]

    def test_round_trips(self):
        for text in self.STATEMENTS:
            stmt = parse_stmt(text)
            assert parse_stmt(stmt_to_str(stmt)) == stmt, text

    def test_canonical_spacing(self):
        assert stmt_to_str(parse_stmt("x:=y+z")) == "x := y + z"
