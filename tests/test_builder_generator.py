"""Tests for the programmatic builder and the random program generator."""

import pytest

from repro.il import ProgramBuilder, run_program
from repro.il.ast import Assign, BinOp, Const, Deref, IfGoto, New, Skip, Var
from repro.il.builder import ProcBuilder
from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.il.program import Program


class TestProcBuilder:
    def test_labels_resolve_forward_and_backward(self):
        b = ProgramBuilder()
        p = b.proc("main", "n")
        p.decl("s")
        p.assign("s", 0)
        p.label("loop")
        p.assign("s", BinOp("+", Var("s"), Var("n")))
        p.assign("n", BinOp("-", Var("n"), Const(1)))
        p.if_goto("n", "loop", "done")
        p.label("done").ret("s")
        program = b.build()
        assert run_program(program, 4) == 10

    def test_goto_sugar(self):
        b = ProgramBuilder()
        p = b.proc("main", "n")
        p.decl("x").assign("x", 1).goto("end")
        p.assign("x", 2)
        p.label("end").ret("x")
        program = b.build()
        branch = program.main.stmt_at(2)
        assert isinstance(branch, IfGoto)
        assert branch.then_index == branch.else_index == 4
        assert run_program(program, 0) == 1

    def test_pointer_helpers(self):
        b = ProgramBuilder()
        p = b.proc("main", "n")
        p.decl("x").decl("q")
        p.new("q").store("q", 5)
        p.assign("x", Deref(Var("q")))
        p.ret("x")
        assert run_program(b.build(), 0) == 5

    def test_call_helper(self):
        b = ProgramBuilder()
        main = b.proc("main", "n")
        main.decl("r").call("r", "inc", "n").ret("r")
        helper = b.proc("inc", "a")
        helper.decl("t").assign("t", BinOp("+", Var("a"), Const(1))).ret("t")
        assert run_program(b.build(), 41) == 42

    def test_duplicate_label_rejected(self):
        p = ProcBuilder("main", "n")
        p.label("x")
        with pytest.raises(ValueError):
            p.label("x")

    def test_undefined_label_rejected(self):
        p = ProcBuilder("main", "n")
        p.goto("nowhere").ret("n")
        with pytest.raises(ValueError):
            p.build()


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = ProgramGenerator(seed=7).gen_proc()
        b = ProgramGenerator(seed=7).gen_proc()
        assert a == b

    def test_different_seeds_differ(self):
        procs = {ProgramGenerator(seed=s).gen_proc() for s in range(10)}
        assert len(procs) > 5

    def test_terminates_by_construction(self):
        # Branches only jump forward: every generated program halts.
        for seed in range(30):
            proc = ProgramGenerator(GeneratorConfig(num_branches=3), seed=seed).gen_proc()
            program = Program((proc,))
            run_program(program, 1, fuel=5_000)  # must not raise OutOfFuel

    def test_no_pointers_unless_enabled(self):
        for seed in range(20):
            proc = ProgramGenerator(GeneratorConfig(allow_pointers=False), seed=seed).gen_proc()
            for stmt in proc.stmts:
                assert not isinstance(stmt, New)
                if isinstance(stmt, Assign):
                    assert not isinstance(stmt.rhs, Deref)

    def test_pointers_appear_when_enabled(self):
        hits = 0
        for seed in range(30):
            proc = ProgramGenerator(
                GeneratorConfig(allow_pointers=True, num_stmts=14), seed=seed
            ).gen_proc()
            if any(isinstance(s, New) for s in proc.stmts):
                hits += 1
        assert hits > 5

    def test_no_division_unless_enabled(self):
        for seed in range(20):
            proc = ProgramGenerator(GeneratorConfig(), seed=seed).gen_proc()
            for stmt in proc.stmts:
                if isinstance(stmt, Assign) and isinstance(stmt.rhs, BinOp):
                    assert stmt.rhs.op not in ("/", "%")

    def test_statement_budget_respected(self):
        config = GeneratorConfig(num_stmts=6, num_vars=2)
        proc = ProgramGenerator(config, seed=0).gen_proc()
        # decls + init assigns + body + return
        assert len(proc.stmts) == 2 + 2 + 6 + 1
