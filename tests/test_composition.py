"""Composition tests: iterating passes to a global fixpoint uncovers
mutually-enabling rewrites (the paper's section 5.2 composition story)."""

import pytest

from repro.il import parse_program, run_program
from repro.il.ast import Assign, Const, Skip, Var, VarLhs
from repro.il.printer import proc_to_str
from repro.cobalt.engine import CobaltEngine
from repro.cobalt.labels import standard_registry
from repro.opts import (
    branch_fold,
    const_branch,
    const_fold,
    const_prop,
    copy_prop,
    dae,
    self_assign_removal,
)
from repro.opts.algebraic import ALL_ALGEBRAIC


@pytest.fixture()
def engine():
    return CobaltEngine(standard_registry())


STANDARD_PASSES = [const_fold, const_prop, copy_prop, const_branch, dae] + ALL_ALGEBRAIC


class TestFixpointComposition:
    def test_fold_prop_fold_cascade(self, engine):
        # 2*3 folds to 6; 6 propagates into b := a + 0; + 0 simplifies; the
        # copy propagates; finally everything but the return chain is dead.
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl b;
              decl c;
              a := 2 * 3;
              b := a;
              c := b + 0;
              return c;
            }
            """
        ).proc("main")
        out, counts = engine.run_to_fixpoint(STANDARD_PASSES, proc)
        assert counts["constFold"] == 1
        assert counts["constProp"] >= 1
        assert counts["addZeroRight"] == 1
        assert counts["deadAssignElim"] >= 2
        # Every statement before the final constant assignment is dead.
        assert isinstance(out.stmt_at(3), Skip)
        assert isinstance(out.stmt_at(4), Skip)
        assert out.stmt_at(5) == Assign(VarLhs(Var("c")), Const(6))
        for n in (-1, 0, 9):
            assert run_program(parse_program(proc_to_str(out)), n) == 6

    def test_constant_branch_cascade(self, engine):
        # f := 0 makes the branch constant; const_branch + branch_fold turn
        # it unconditional; dae removes the flag.
        proc = parse_program(
            """
            main(n) {
              decl f;
              decl x;
              f := 0;
              skip;
              if f goto 5 else 6;
              x := 1;
              x := 2;
              return x;
            }
            """
        ).proc("main")
        passes = [const_branch, branch_fold, dae]
        out, counts = engine.run_to_fixpoint(passes, proc)
        assert counts["constBranch"] == 1
        assert counts["branchFold"] == 1
        branch = out.stmt_at(4)
        assert branch.then_index == branch.else_index == 6
        assert counts.get("deadAssignElim", 0) >= 1  # f := 0 now dead
        for n in (0, 1):
            assert run_program(parse_program(proc_to_str(out)), n) == 2

    def test_fixpoint_terminates_on_no_op(self, engine):
        proc = parse_program("main(n) { return n; }").proc("main")
        out, counts = engine.run_to_fixpoint(STANDARD_PASSES, proc)
        assert out == proc
        assert counts == {}

    def test_fixpoint_preserves_semantics_on_random_programs(self, engine):
        from repro.il.generator import GeneratorConfig, ProgramGenerator
        from repro.il.program import Program
        from repro.fuzz.oracle import check_equivalence

        for seed in range(25):
            generator = ProgramGenerator(GeneratorConfig(num_stmts=12), seed=seed)
            program = Program((generator.gen_proc(),))
            out, _ = engine.run_to_fixpoint(STANDARD_PASSES, program.main)
            mismatch = check_equivalence(
                program, program.with_proc(out), (-2, 0, 1, 3)
            )
            assert mismatch is None, (
                f"seed {seed}: {mismatch}\n{proc_to_str(program.main, indices=True)}"
                f"\n->\n{proc_to_str(out, indices=True)}"
            )
