"""Backend-verdict agreement on the E1 suite, seeded from the fuzz corpus.

The metamorphic relation behind ``repro fuzz --kind metamorphic``, pinned
as a parametrized cross-check: for every item of the shipped E1
optimization suite AND every rule stored in the fuzz regression corpus,
the ``internal`` and ``portfolio`` backends must produce byte-identical
canonical soundness reports.  (Without an external solver the portfolio
degrades to the internal prover; with one, the portfolio may only *race*
to the same verdicts — either way the canonical rendering must match.)
"""

import pytest

from repro import opts as suite
from repro.fuzz import DEFAULT_CORPUS_DIR, frontier_verify_options, load_entries
from repro.fuzz.rules import rule_from_json
from repro.verify.checker import SoundnessChecker

pytestmark = pytest.mark.slow

_CORPUS_RULES = [
    (entry.data["rule"]["name"] or path.stem, entry.data["rule"])
    for path, entry in load_entries(DEFAULT_CORPUS_DIR)
    if entry.kind in ("unsound-rule", "metamorphic")
]


@pytest.fixture(scope="module")
def checkers():
    return (
        SoundnessChecker(options=frontier_verify_options(backend="internal")),
        SoundnessChecker(options=frontier_verify_options(backend="portfolio")),
    )


@pytest.mark.parametrize(
    "item",
    list(suite.ALL_ANALYSES) + list(suite.ALL_OPTIMIZATIONS),
    ids=lambda item: item.name,
)
def test_e1_suite_backend_agreement(item, checkers):
    internal, portfolio = checkers
    from repro.cobalt.dsl import PureAnalysis

    if isinstance(item, PureAnalysis):
        a = internal.check_analysis(item).canonical()
        b = portfolio.check_analysis(item).canonical()
    else:
        a = internal.check_optimization(item).canonical()
        b = portfolio.check_optimization(item).canonical()
    assert a == b


@pytest.mark.parametrize(
    "name,rule_json", _CORPUS_RULES, ids=[name for name, _ in _CORPUS_RULES]
)
def test_corpus_rule_backend_agreement(name, rule_json, checkers):
    internal, portfolio = checkers
    rule = rule_from_json(rule_json)
    a = internal.check_pattern(rule).canonical()
    b = portfolio.check_pattern(rule).canonical()
    assert a == b
