"""Tests for the prover's search heuristics: split priorities, seed
clauses, nosplit tagging, phase selection, and relevance-guarded
instantiation — the machinery that makes the Cobalt obligations tractable."""

import pytest

from repro.logic.formulas import (
    Clause,
    Eq,
    Forall,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    Pred,
    clausify,
)
from repro.logic.terms import App, IntConst, LVar, mk
from repro.prover import Prover, ProverConfig
from repro.prover.core import _is_kind_literal, default_split_priority

a, b, c = App("a"), App("b"), App("c")
x, y = LVar("x"), LVar("y")
K1, K2 = App("K_ONE"), App("K_TWO")


class TestKindLiterals:
    def test_kind_tag_detected(self):
        lit = Literal(True, Eq(mk("stmtKind", a), K1))
        assert _is_kind_literal(lit)

    def test_plain_equality_not_kind(self):
        lit = Literal(True, Eq(a, b))
        assert not _is_kind_literal(lit)

    def test_predicate_not_kind(self):
        lit = Literal(True, Pred("p", (a,)))
        assert not _is_kind_literal(lit)


class TestSplitPriority:
    def test_seed_clause_prioritized(self):
        clause = Clause((Literal(True, Eq(a, b)),), origin="case-split-seed")
        lit = clause.literals[0]
        assert default_split_priority(lit, clause) == 2

    def test_nosplit_clause_demoted(self):
        clause = Clause((Literal(True, Eq(a, b)),), origin="wf-env [nosplit]")
        lit = clause.literals[0]
        assert default_split_priority(lit, clause) == -1

    def test_kind_literal_demoted(self):
        clause = Clause((Literal(False, Eq(mk("exprKind", a), K1)),), origin="axiom#1")
        lit = clause.literals[0]
        assert default_split_priority(lit, clause) == -1


class TestSeededCaseSplits:
    def test_seeded_exhaustiveness_enables_proof(self):
        # p follows from each kind, but only a seeded exhaustiveness makes
        # the case analysis available (kind clauses are never split).
        axioms = [
            Forall(("x",), Implies(Eq(mk("kindOf", x), K1), Pred("p", (x,))),
                   ((mk("kindOf", x),),)),
            Forall(("x",), Implies(Eq(mk("kindOf", x), K2), Pred("p", (x,))),
                   ((mk("kindOf", x),),)),
        ]
        prover = Prover(axioms, constructors={"K_ONE", "K_TWO"})
        goal = Pred("p", (a,))
        # Without the seed: unknown (the prover refuses to invent the split).
        result = prover.prove(goal, extra_axioms=[Eq(mk("kindOf", a), mk("kindOf", a))])
        assert not result.proved
        # With the seeded exhaustiveness: proved.
        seed = clausify(
            Or((Eq(mk("kindOf", a), K1), Eq(mk("kindOf", a), K2))),
            origin="case-split-seed",
        )
        assert prover.prove(goal, extra_axioms=seed).proved

    def test_nosplit_axiom_still_propagates(self):
        # A nosplit clause is used by unit propagation once one literal is
        # decided by other facts.
        inj = Clause(
            (
                Literal(True, Eq(x, y)),
                Literal(False, Eq(mk("loc", x), mk("loc", y))),
            ),
            triggers=((mk("loc", x), mk("loc", y)),),
            origin="inj [nosplit]",
        )
        prover = Prover([inj])
        goal = Implies(
            Not(Eq(a, b)),
            Not(Eq(mk("loc", a), mk("loc", b))),
        )
        assert prover.prove(goal).proved


class TestRelevanceGuard:
    def test_kind_conditional_instances_deferred_until_kind_known(self):
        # value axiom: kindOf(t)=K1 -> val(t)=1.  With kindOf(a) unknown the
        # instance is deferred; stating the kind admits it.
        ax = Forall(
            ("x",),
            Implies(Eq(mk("kindOf", x), K1), Eq(mk("val", x), IntConst(1))),
            ((mk("val", x),),),
        )
        prover = Prover([ax], constructors={"K_ONE", "K_TWO"})
        goal_without = Eq(mk("val", a), IntConst(1))
        assert not prover.prove(goal_without).proved
        goal_with = Implies(Eq(mk("kindOf", a), K1), Eq(mk("val", a), IntConst(1)))
        assert prover.prove(goal_with).proved

    def test_positive_kind_facts_not_deferred(self):
        # Axioms that *define* kinds (positive unit conclusions) must flow.
        ax = Forall(("x",), Eq(mk("kindOf", mk("mkone", x)), K1), ((mk("mkone", x),),))
        use = Forall(
            ("x",),
            Implies(Eq(mk("kindOf", x), K1), Pred("ok", (x,))),
            ((Pred("ok", (x,)),),),
        )
        prover = Prover([ax, use], constructors={"K_ONE"})
        goal = Pred("ok", (mk("mkone", a),))
        assert prover.prove(goal).proved


class TestPhaseSelection:
    def test_equality_split_tries_disequal_first(self):
        # Regardless of phase order the result must be correct; this guards
        # the phase logic against sign bugs by needing both branches.
        m = App("m0")
        axioms = [
            Forall(
                ("m", "k", "v"),
                Eq(mk("select", mk("update", LVar("m"), LVar("k"), LVar("v")), LVar("k")), LVar("v")),
                ((mk("update", LVar("m"), LVar("k"), LVar("v")),),),
            ),
            Forall(
                ("m", "k1", "v", "k2"),
                Or(
                    (
                        Eq(LVar("k1"), LVar("k2")),
                        Eq(
                            mk("select", mk("update", LVar("m"), LVar("k1"), LVar("v")), LVar("k2")),
                            mk("select", LVar("m"), LVar("k2")),
                        ),
                    )
                ),
                ((mk("select", mk("update", LVar("m"), LVar("k1"), LVar("v")), LVar("k2")),),),
            ),
        ]
        prover = Prover(axioms)
        # select(update(m,a,1), b) is 1 or select(m,b) — either way, if
        # select(m,b)=1 too, the read is 1 in both branches.
        goal = Implies(
            Eq(mk("select", m, b), IntConst(1)),
            Eq(mk("select", mk("update", m, a, IntConst(1)), b), IntConst(1)),
        )
        assert prover.prove(goal).proved


class TestResourceLimits:
    def test_timeout_reports_unknown(self):
        # An instantiation treadmill: f(x) ~> p(f(f(x))) never terminates.
        ax = Forall(
            ("x",), Pred("p", (mk("f", mk("f", x)),)), ((mk("f", x),),)
        )
        prover = Prover([ax], config=ProverConfig(timeout_s=0.3, max_rounds=10_000))
        result = prover.prove(Pred("q"), extra_axioms=[Pred("p", (mk("f", a),))])
        assert not result.proved
        assert result.stats.elapsed_s < 5

    def test_instance_budget(self):
        ax = Forall(("x",), Pred("p", (mk("f", mk("f", x)),)), ((mk("f", x),),))
        prover = Prover([ax], config=ProverConfig(max_instances=50, timeout_s=10))
        result = prover.prove(Pred("q"), extra_axioms=[Pred("p", (mk("f", a),))])
        assert not result.proved
        assert result.stats.instances <= 50


class TestOriginTuples:
    def test_axiom_with_origin_tuple(self):
        prover = Prover([("my-axiom", Pred("p"))])
        assert prover.prove(Pred("p")).proved
        assert any("my-axiom" in c.origin for c in prover._base_clauses)
