"""The shipped textual suite (cobalt/suite.cobalt) parses to patterns that
behave exactly like the library definitions and verify through the CLI."""

from pathlib import Path

import pytest

from repro.cli import main, parse_blocks
from repro.il import parse_program
from repro.cobalt.dsl import PureAnalysis
from repro.cobalt.engine import CobaltEngine
from repro.cobalt.labels import standard_registry
from repro.opts import const_prop, copy_prop, cse, dae, pre_duplicate, self_assign_removal

SUITE_PATH = Path(__file__).parent.parent / "cobalt" / "suite.cobalt"

LIBRARY = {
    "constProp": const_prop.pattern,
    "copyProp": copy_prop.pattern,
    "cse": cse.pattern,
    "selfAssignRemoval": self_assign_removal.pattern,
    "deadAssignElim": dae.pattern,
    "preDuplicate": pre_duplicate.pattern,
}

WORKLOAD = """
main(n) {
  decl a;
  decl b;
  decl c;
  decl t;
  a := 2;
  b := a;
  t := n + 1;
  c := n + 1;
  c := c;
  t := 9;
  skip;
  t := b + 1;
  return t;
}
"""


@pytest.fixture(scope="module")
def parsed():
    return parse_blocks(SUITE_PATH.read_text())


class TestSuiteFile:
    def test_parses_completely(self, parsed):
        names = [getattr(item, "name") for item in parsed]
        assert names == [
            "constProp",
            "copyProp",
            "cse",
            "selfAssignRemoval",
            "deadAssignElim",
            "preDuplicate",
            "taintedness",
        ]
        assert isinstance(parsed[-1], PureAnalysis)

    def test_textual_patterns_match_library_behaviour(self, parsed):
        engine = CobaltEngine(standard_registry())
        proc = parse_program(WORKLOAD).proc("main")
        for item in parsed:
            if isinstance(item, PureAnalysis):
                continue
            library = LIBRARY[item.name]
            assert engine.legal_transformations(item, proc) == (
                engine.legal_transformations(library, proc)
            ), f"{item.name} differs from the library version"

    def test_cli_check_proves_whole_file(self):
        assert main(["--timeout", "120", "check", str(SUITE_PATH)]) == 0
