"""Tests for the refutation prover: propositional reasoning, equality,
quantifier instantiation, and the select/update map theory the soundness
checker relies on."""

from repro.logic.formulas import (
    And,
    Eq,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
)
from repro.logic.terms import App, IntConst, LVar, mk
from repro.prover import Prover, ProverConfig

a, b, c, d = App("a"), App("b"), App("c"), App("d")
x, y, z = LVar("x"), LVar("y"), LVar("z")


def prove(goal, axioms=(), constructors=(), **kw):
    prover = Prover(list(axioms), constructors=constructors)
    return prover.prove(goal, **kw)


class TestPropositional:
    def test_modus_ponens(self):
        p, q = Pred("p"), Pred("q")
        result = prove(q, axioms=[p, Implies(p, q)])
        assert result.proved

    def test_unprovable(self):
        p, q = Pred("p"), Pred("q")
        result = prove(q, axioms=[p])
        assert not result.proved
        assert result.context  # counterexample context reported

    def test_case_split(self):
        p, q, r = Pred("p"), Pred("q"), Pred("r")
        axioms = [Or((p, q)), Implies(p, r), Implies(q, r)]
        assert prove(r, axioms=axioms).proved

    def test_deep_split(self):
        # Chain of forced case splits, all leading to the goal.
        preds = [Pred(f"p{i}") for i in range(6)]
        goal = Pred("goal")
        axioms = [Or((preds[0], preds[1]))]
        axioms += [Implies(p, goal) for p in preds]
        axioms += [Or((preds[2], preds[3])), Or((preds[4], preds[5]))]
        assert prove(goal, axioms=axioms).proved

    def test_excluded_middle(self):
        p = Pred("p")
        assert prove(Or((p, Not(p)))).proved


class TestEquality:
    def test_symmetry_transitivity(self):
        axioms = [Eq(a, b), Eq(c, b)]
        assert prove(Eq(a, c), axioms=axioms).proved

    def test_congruence(self):
        axioms = [Eq(a, b)]
        assert prove(Eq(mk("f", a), mk("f", b)), axioms=axioms).proved

    def test_disequality(self):
        axioms = [Eq(a, b), Not(Eq(b, c))]
        assert prove(Not(Eq(a, c)), axioms=axioms).proved

    def test_numerals(self):
        assert prove(Not(Eq(IntConst(1), IntConst(2)))).proved

    def test_arith(self):
        goal = Eq(mk("@plus", IntConst(2), IntConst(2)), IntConst(4))
        assert prove(goal).proved

    def test_constructor_distinctness(self):
        goal = Not(Eq(App("skip"), mk("assgn", a, b)))
        assert prove(goal, constructors={"skip", "assgn"}).proved

    def test_constructor_injectivity(self):
        axioms = [Eq(mk("assgn", a, b), mk("assgn", c, d))]
        assert prove(And((Eq(a, c), Eq(b, d))), axioms=axioms, constructors={"assgn"}).proved


class TestQuantifiers:
    def test_universal_instantiation(self):
        ax = Forall(("x",), Implies(Pred("p", (x,)), Pred("q", (x,))))
        result = prove(Pred("q", (a,)), axioms=[ax, Pred("p", (a,))])
        assert result.proved

    def test_chained_instantiation(self):
        ax1 = Forall(("x",), Implies(Pred("p", (x,)), Pred("q", (mk("f", x),))))
        ax2 = Forall(("x",), Implies(Pred("q", (x,)), Pred("r", (x,))))
        goal = Pred("r", (mk("f", a),))
        assert prove(goal, axioms=[ax1, ax2, Pred("p", (a,))]).proved

    def test_quantified_goal(self):
        # forall x. p(x) -> p(x)
        goal = Forall(("x",), Implies(Pred("p", (x,)), Pred("p", (x,))))
        assert prove(goal).proved

    def test_quantified_goal_with_axiom(self):
        # Trigger on the predicate atom itself: the negated goal asserts
        # ~p(f(sk)), which interns the term p(f(sk)) and fires the trigger
        # with x := f(sk).
        ax = Forall(("x",), Pred("p", (x,)), ((mk("p", x),),))
        goal = Forall(("y",), Pred("p", (mk("f", y),)))
        assert prove(goal, axioms=[ax]).proved

    def test_trigger_binds_argument(self):
        # A trigger f(x) fires on the term f(a) binding x := a.
        ax = Forall(("x",), Pred("p", (x,)), ((mk("f", x),),))
        result = prove(Pred("p", (a,)), axioms=[ax, Eq(mk("f", a), b)])
        assert result.proved

    def test_multipattern(self):
        # Injectivity-style axiom via multi-pattern trigger.
        ax = Forall(
            ("x", "y"),
            Or((Eq(x, y), Not(Eq(mk("h", x), mk("h", y))))),
            triggers=((mk("h", x), mk("h", y)),),
        )
        goal = Implies(Eq(mk("h", a), mk("h", b)), Eq(a, b))
        assert prove(goal, axioms=[ax]).proved

    def test_unprovable_quantified(self):
        ax = Forall(("x",), Implies(Pred("p", (x,)), Pred("q", (x,))))
        result = prove(Pred("q", (a,)), axioms=[ax])
        assert not result.proved


SELECT_UPDATE_AXIOMS = [
    # select(update(m,k,v),k) = v
    Forall(
        ("m", "k", "v"),
        Eq(mk("select", mk("update", LVar("m"), LVar("k"), LVar("v")), LVar("k")), LVar("v")),
        ((mk("update", LVar("m"), LVar("k"), LVar("v")),),),
    ),
    # k1 = k2 \/ select(update(m,k1,v),k2) = select(m,k2)
    Forall(
        ("m", "k1", "v", "k2"),
        Or(
            (
                Eq(LVar("k1"), LVar("k2")),
                Eq(
                    mk("select", mk("update", LVar("m"), LVar("k1"), LVar("v")), LVar("k2")),
                    mk("select", LVar("m"), LVar("k2")),
                ),
            )
        ),
        ((mk("select", mk("update", LVar("m"), LVar("k1"), LVar("v")), LVar("k2")),),),
    ),
]


class TestMapTheory:
    def test_read_own_write(self):
        m = App("m0")
        goal = Eq(mk("select", mk("update", m, a, IntConst(5)), a), IntConst(5))
        assert prove(goal, axioms=SELECT_UPDATE_AXIOMS).proved

    def test_read_other_write(self):
        m = App("m0")
        goal = Implies(
            Not(Eq(a, b)),
            Eq(mk("select", mk("update", m, a, IntConst(5)), b), mk("select", m, b)),
        )
        assert prove(goal, axioms=SELECT_UPDATE_AXIOMS).proved

    def test_two_updates_commute_on_reads(self):
        m = App("m0")
        inner = mk("update", m, a, IntConst(1))
        outer = mk("update", inner, b, IntConst(2))
        goal = Implies(
            Not(Eq(a, b)),
            Eq(mk("select", outer, a), IntConst(1)),
        )
        assert prove(goal, axioms=SELECT_UPDATE_AXIOMS).proved

    def test_update_changes_value(self):
        m = App("m0")
        goal = Eq(mk("select", mk("update", m, a, IntConst(1)), a), IntConst(2))
        assert not prove(goal, axioms=SELECT_UPDATE_AXIOMS).proved

    def test_no_op_update(self):
        # update(m, k, select(m, k)) = m, given as an extensionality-style axiom.
        noop = Forall(
            ("m", "k"),
            Eq(mk("update", LVar("m"), LVar("k"), mk("select", LVar("m"), LVar("k"))), LVar("m")),
            ((mk("update", LVar("m"), LVar("k"), mk("select", LVar("m"), LVar("k"))),),),
        )
        m = App("m0")
        goal = Eq(mk("update", m, a, mk("select", m, a)), m)
        assert prove(goal, axioms=[noop]).proved


class TestContextReporting:
    def test_context_mentions_assertions(self):
        p, q = Pred("p"), Pred("q")
        result = prove(q, axioms=[p], name="demo")
        assert result.goal_name == "demo"
        text = "\n".join(result.context)
        assert "p" in text

    def test_stats_populated(self):
        p, q, r = Pred("p"), Pred("q"), Pred("r")
        result = prove(r, axioms=[Or((p, q)), Implies(p, r), Implies(q, r)])
        assert result.proved
        assert result.stats.elapsed_s >= 0
        assert result.stats.propagations >= 1
