"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_blocks, split_blocks
from repro.cobalt.dsl import ForwardPattern, PureAnalysis

GOOD_COBALT = """
forward optimization cliConstProp {
  stmt(Y := C)
  followed by
  !mayDef(Y)
  until
  X := Y  =>  X := C
  with witness
  eta(Y) == C
}

analysis cliTaint {
  stmt(decl X)
  followed by
  !stmt(... := &X)
  defines
  notTainted(X)
  with witness
  notPointedTo(X)
}
"""

BAD_COBALT = """
forward optimization cliBroken {
  stmt(Y := C)
  followed by
  !syntacticDef(Y)
  until
  X := Y  =>  X := C
  with witness
  eta(Y) == C
}
"""

PROGRAM = """
main(n) {
  decl a;
  decl b;
  a := 2;
  b := a;
  return b;
}
"""


@pytest.fixture()
def cobalt_file(tmp_path):
    path = tmp_path / "opts.cobalt"
    path.write_text(GOOD_COBALT)
    return str(path)


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.il"
    path.write_text(PROGRAM)
    return str(path)


class TestBlockSplitting:
    def test_splits_two_blocks(self):
        blocks = split_blocks(GOOD_COBALT)
        assert len(blocks) == 2
        assert blocks[0].lstrip().startswith("forward optimization")
        assert blocks[1].lstrip().startswith("analysis")

    def test_parse_blocks_types(self):
        items = parse_blocks(GOOD_COBALT)
        assert isinstance(items[0], ForwardPattern)
        assert isinstance(items[1], PureAnalysis)

    def test_empty_file_rejected(self):
        with pytest.raises(SystemExit):
            split_blocks("// nothing here")


class TestCheckCommand:
    def test_check_sound_file(self, cobalt_file, capsys):
        assert main(["check", cobalt_file]) == 0
        out = capsys.readouterr().out
        assert "cliConstProp: SOUND" in out
        assert "cliTaint: SOUND" in out

    def test_check_unsound_file(self, tmp_path, capsys):
        path = tmp_path / "bad.cobalt"
        path.write_text(BAD_COBALT)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "counterexample context" in out


class TestWitnessInference:
    def test_infer_flag_rescues_missing_witness(self, tmp_path, capsys):
        # Correct guard/rule but a useless witness: plain check fails,
        # --infer-witness reconstructs eta(Y) == C and proves it.
        source = """
        forward optimization lazyConstProp {
          stmt(Y := C)
          followed by
          !mayDef(Y)
          until
          X := Y  =>  X := C
          with witness
          true
        }
        """
        path = tmp_path / "lazy.cobalt"
        path.write_text(source)
        assert main(["check", str(path)]) == 1
        assert main(["check", str(path), "--infer-witness"]) == 0
        out = capsys.readouterr().out
        assert "inferred witness" in out


class TestRunCommand:
    def test_run(self, program_file, capsys):
        assert main(["run", program_file, "5"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_run_stuck(self, tmp_path, capsys):
        path = tmp_path / "stuck.il"
        path.write_text("main(n) { decl x; x := 1 / n; return x; }")
        assert main(["run", str(path), "0"]) == 2


class TestOptCommand:
    def test_opt_with_trust(self, program_file, capsys):
        assert main(["opt", program_file, "--passes", "constProp", "--trust"]) == 0
        out = capsys.readouterr().out
        assert "b := 2" in out

    def test_opt_verifies_first(self, program_file, capsys):
        assert main(["opt", program_file, "--passes", "constProp"]) == 0
        err = capsys.readouterr().err
        assert "constProp: sound" in err

    def test_unknown_pass(self, program_file):
        with pytest.raises(SystemExit):
            main(["opt", program_file, "--passes", "noSuchPass", "--trust"])

    def test_engine_stats_flag(self, program_file, capsys):
        code = main(
            ["opt", program_file, "--passes", "constProp", "--trust",
             "--engine-stats"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "b := 2" in captured.out
        assert "engine stats:" in captured.err
        assert "worklist pops" in captured.err
        assert "hit rate" in captured.err

    def test_reference_engine_same_output(self, program_file, capsys):
        assert main(["opt", program_file, "--passes", "constProp",
                     "--trust"]) == 0
        worklist_out = capsys.readouterr().out
        assert main(["opt", program_file, "--passes", "constProp", "--trust",
                     "--engine", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert worklist_out == reference_out

    def test_pipeline(self, program_file, capsys):
        code = main(
            [
                "opt",
                program_file,
                "--passes",
                "constProp,deadAssignElim",
                "--trust",
                "--iterate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skip" in out  # a := 2 became dead and was removed


class TestCounterexampleCommand:
    def test_synthesizes_for_unsound(self, tmp_path, capsys):
        path = tmp_path / "bad.cobalt"
        path.write_text(BAD_COBALT)
        assert main(["counterexample", str(path)]) == 1
        out = capsys.readouterr().out
        assert "miscompilation found" in out
