"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_blocks, split_blocks
from repro.cobalt.dsl import ForwardPattern, PureAnalysis

GOOD_COBALT = """
forward optimization cliConstProp {
  stmt(Y := C)
  followed by
  !mayDef(Y)
  until
  X := Y  =>  X := C
  with witness
  eta(Y) == C
}

analysis cliTaint {
  stmt(decl X)
  followed by
  !stmt(... := &X)
  defines
  notTainted(X)
  with witness
  notPointedTo(X)
}
"""

BAD_COBALT = """
forward optimization cliBroken {
  stmt(Y := C)
  followed by
  !syntacticDef(Y)
  until
  X := Y  =>  X := C
  with witness
  eta(Y) == C
}
"""

PROGRAM = """
main(n) {
  decl a;
  decl b;
  a := 2;
  b := a;
  return b;
}
"""


@pytest.fixture()
def cobalt_file(tmp_path):
    path = tmp_path / "opts.cobalt"
    path.write_text(GOOD_COBALT)
    return str(path)


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.il"
    path.write_text(PROGRAM)
    return str(path)


class TestBlockSplitting:
    def test_splits_two_blocks(self):
        blocks = split_blocks(GOOD_COBALT)
        assert len(blocks) == 2
        assert blocks[0].lstrip().startswith("forward optimization")
        assert blocks[1].lstrip().startswith("analysis")

    def test_parse_blocks_types(self):
        items = parse_blocks(GOOD_COBALT)
        assert isinstance(items[0], ForwardPattern)
        assert isinstance(items[1], PureAnalysis)

    def test_empty_file_rejected(self):
        with pytest.raises(SystemExit):
            split_blocks("// nothing here")


class TestCheckCommand:
    def test_check_sound_file(self, cobalt_file, capsys):
        assert main(["check", cobalt_file]) == 0
        out = capsys.readouterr().out
        assert "cliConstProp: SOUND" in out
        assert "cliTaint: SOUND" in out

    def test_check_unsound_file(self, tmp_path, capsys):
        path = tmp_path / "bad.cobalt"
        path.write_text(BAD_COBALT)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert "counterexample context" in out


class TestWitnessInference:
    def test_infer_flag_rescues_missing_witness(self, tmp_path, capsys):
        # Correct guard/rule but a useless witness: plain check fails,
        # --infer-witness reconstructs eta(Y) == C and proves it.
        source = """
        forward optimization lazyConstProp {
          stmt(Y := C)
          followed by
          !mayDef(Y)
          until
          X := Y  =>  X := C
          with witness
          true
        }
        """
        path = tmp_path / "lazy.cobalt"
        path.write_text(source)
        assert main(["check", str(path)]) == 1
        assert main(["check", str(path), "--infer-witness"]) == 0
        out = capsys.readouterr().out
        assert "inferred witness" in out


class TestRunCommand:
    def test_run(self, program_file, capsys):
        assert main(["run", program_file, "5"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_run_stuck(self, tmp_path, capsys):
        path = tmp_path / "stuck.il"
        path.write_text("main(n) { decl x; x := 1 / n; return x; }")
        assert main(["run", str(path), "0"]) == 2


class TestOptCommand:
    def test_opt_with_trust(self, program_file, capsys):
        assert main(["opt", program_file, "--passes", "constProp", "--trust"]) == 0
        out = capsys.readouterr().out
        assert "b := 2" in out

    def test_opt_verifies_first(self, program_file, capsys):
        assert main(["opt", program_file, "--passes", "constProp"]) == 0
        err = capsys.readouterr().err
        assert "constProp: sound" in err

    def test_unknown_pass(self, program_file):
        with pytest.raises(SystemExit):
            main(["opt", program_file, "--passes", "noSuchPass", "--trust"])

    def test_engine_stats_flag(self, program_file, capsys):
        code = main(
            ["opt", program_file, "--passes", "constProp", "--trust",
             "--engine-stats"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "b := 2" in captured.out
        assert "engine stats:" in captured.err
        assert "worklist pops" in captured.err
        assert "hit rate" in captured.err

    def test_reference_engine_same_output(self, program_file, capsys):
        assert main(["opt", program_file, "--passes", "constProp",
                     "--trust"]) == 0
        worklist_out = capsys.readouterr().out
        assert main(["opt", program_file, "--passes", "constProp", "--trust",
                     "--engine", "reference"]) == 0
        reference_out = capsys.readouterr().out
        assert worklist_out == reference_out

    def test_pipeline(self, program_file, capsys):
        code = main(
            [
                "opt",
                program_file,
                "--passes",
                "constProp,deadAssignElim",
                "--trust",
                "--iterate",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skip" in out  # a := 2 became dead and was removed


class TestCounterexampleCommand:
    def test_synthesizes_for_unsound(self, tmp_path, capsys):
        path = tmp_path / "bad.cobalt"
        path.write_text(BAD_COBALT)
        assert main(["counterexample", str(path)]) == 1
        out = capsys.readouterr().out
        assert "miscompilation found" in out


@pytest.fixture()
def small_suite(monkeypatch):
    """Shrink the shipped suite to one optimization so CLI runs are fast."""
    from repro import opts as suite

    keep = [o for o in suite.ALL_OPTIMIZATIONS if o.name == "constProp"]
    assert keep
    monkeypatch.setattr(suite, "ALL_ANALYSES", [])
    monkeypatch.setattr(suite, "ALL_OPTIMIZATIONS", keep)
    return keep


class TestJsonOutput:
    """``--json`` must emit exactly the daemon's wire schema — the CLI
    document and ``SuiteReport.to_wire()`` may not drift."""

    def test_suite_json_matches_to_wire(self, small_suite, capsys):
        import json

        from repro.api import SuiteReport, verify_suite
        from repro.service.wire import WIRE_VERSION

        assert main(["suite", "--json"]) == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["schema_version"] == WIRE_VERSION
        assert doc["kind"] == "suite-report"
        # The progress table moved to stderr: stdout is one JSON document.
        assert "SOUND" not in captured.out
        assert "constProp" in captured.err

        local = verify_suite()
        reference = local.to_wire()
        assert set(doc) == set(reference)
        decoded = SuiteReport.from_wire(doc)
        assert decoded.canonical() == local.canonical()
        assert decoded.backend == local.backend

    def test_suite_without_json_keeps_table_on_stdout(self, small_suite,
                                                      capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "constProp" in out and "SOUND" in out

    def test_cache_stats_json_document(self, tmp_path, capsys):
        import json

        from repro.service.wire import dumps, envelope
        from repro.verify.cache import SCHEMA_VERSION

        target = str(tmp_path / "cache")
        assert main(["cache", "stats", "--dir", target, "--json"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == dumps(envelope("cache-stats", {
            "location": target,
            "objects": 0,
            "schema": SCHEMA_VERSION,
        }))
        json.loads(out)  # and it is valid JSON

    def test_fuzz_json_carries_the_canonical_report(self, capsys):
        import json

        args = ["fuzz", "--kind", "axioms", "--cases", "2", "--seed", "7",
                "--no-corpus", "--quiet"]
        assert main(args) == 0
        plain = capsys.readouterr().out.strip()
        assert main(args + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "fuzz-report"
        assert doc["ok"] is True
        assert doc["seed"] == 7
        [campaign] = doc["campaigns"]
        assert campaign["kind"] == "axioms"
        assert campaign["canonical"] == plain


class TestRetiredProverFlag:
    def test_prover_alias_is_gone(self, capsys):
        with pytest.raises(SystemExit):
            main(["--prover", "incremental", "suite"])
        assert "--prover-mode" not in capsys.readouterr().out


class TestServeSubcommand:
    def test_serve_is_registered_with_defaults(self):
        from repro.cli import build_parser, cmd_serve

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.fn is cmd_serve
        assert args.port == 0
        assert args.host == "127.0.0.1"
        assert args.max_jobs == 8
        assert args.burst == 20.0
