"""Engine tests on loops, multi-procedure programs, composition, and the
profitability-heuristic interface."""

import pytest

from repro.il import parse_program, run_program
from repro.il.ast import Assign, Const, Skip, Var, VarLhs
from repro.cobalt.engine import CobaltEngine, TransformationInstance
from repro.cobalt.labels import standard_registry
from repro.cobalt.patterns import freeze_subst
from repro.opts import (
    const_branch,
    const_prop,
    cse,
    dae,
    licm_duplicate,
    pre_pipeline,
    self_assign_removal,
)
from repro.opts.algebraic import add_zero_right, mul_zero_right
from repro.opts.pre import make_site_chooser, pre_duplicate


@pytest.fixture()
def engine():
    return CobaltEngine(standard_registry())


class TestLoops:
    def test_const_prop_through_loop(self, engine):
        # a := 2 dominates the loop; the loop body does not redefine a.
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl s;
              a := 2;
              s := 0;
              if n goto 5 else 8;
              s := s + a;
              n := n - 1;
              if n goto 5 else 8;
              return s;
            }
            """
        ).proc("main")
        out, applied = engine.run_optimization(const_prop, proc)
        assert applied == []  # s + a is not an X := Y statement; nothing to do
        # But a copy of a inside the loop does get rewritten:
        proc2 = parse_program(
            """
            main(n) {
              decl a;
              decl t;
              decl s;
              a := 2;
              s := 0;
              if n goto 6 else 10;
              t := a;
              s := s + t;
              n := n - 1;
              if n goto 6 else 10;
              return s;
            }
            """
        ).proc("main")
        out, applied = engine.run_optimization(const_prop, proc2)
        assert any(inst.index == 6 for inst in applied)
        assert out.stmt_at(6) == Assign(VarLhs(Var("t")), Const(2))

    def test_loop_redefinition_kills_fact(self, engine):
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl t;
              a := 2;
              if n goto 4 else 7;
              t := a;
              a := a + 1;
              if n goto 4 else 7;
              return t;
            }
            """
        ).proc("main")
        out, applied = engine.run_optimization(const_prop, proc)
        assert applied == []  # the back edge carries a redefined a

    def test_dae_in_loop_body(self, engine):
        # x := 1 inside the loop is overwritten before any use on all paths.
        proc = parse_program(
            """
            main(n) {
              decl x;
              x := 0;
              if n goto 3 else 6;
              x := 1;
              x := 2;
              if 1 goto 6 else 6;
              return x;
            }
            """
        ).proc("main")
        out, applied = engine.run_optimization(dae, proc)
        assert any(inst.index == 3 for inst in applied)

    def test_licm_pipeline_hoists(self, engine):
        # skip at 3 is the preheader; t := a + b inside the loop is invariant.
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl b;
              decl t;
              decl s;
              a := 3;
              b := 4;
              s := 0;
              skip;
              t := a + b;
              s := s + t;
              n := n - 1;
              if n goto 8 else 12;
              return s;
            }
            """
        ).proc("main")
        baseline = [run_program(parse_program(_wrap(proc)), v) for v in (1, 3)]
        current, applied = engine.run_optimization(licm_duplicate, proc)
        assert any(inst.index == 7 for inst in applied)  # duplicated into preheader
        for opt in (cse, self_assign_removal):
            current, _ = engine.run_optimization(opt, current)
        assert isinstance(current.stmt_at(8), Skip)  # in-loop computation gone
        after = [run_program(parse_program(_wrap(current)), v) for v in (1, 3)]
        assert after == baseline


def _wrap(proc):
    from repro.il.printer import proc_to_str

    return proc_to_str(proc)


class TestMultiProcedure:
    def test_run_on_program_touches_every_procedure(self, engine):
        program = parse_program(
            """
            main(n) {
              decl a;
              decl b;
              a := 1;
              b := a;
              return b;
            }
            helper(m) {
              decl c;
              decl d;
              c := 2;
              d := c;
              return d;
            }
            """
        )
        out = engine.run_on_program(const_prop, program)
        assert out.main.stmt_at(3) == Assign(VarLhs(Var("b")), Const(1))
        assert out.proc("helper").stmt_at(3) == Assign(VarLhs(Var("d")), Const(2))

    def test_calls_kill_facts_conservatively(self, engine):
        program = parse_program(
            """
            main(n) {
              decl a;
              decl b;
              a := 1;
              b := helper(n);
              b := a;
              return b;
            }
            helper(m) {
              return m;
            }
            """
        )
        out, applied = engine.run_optimization(const_prop, program.main)
        assert applied == []  # the call may clobber a (conservatively)


class TestChooseInterface:
    def test_site_chooser_limits_applications(self, engine):
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl x;
              decl y;
              a := 1;
              x := a;
              y := a;
              return y;
            }
            """
        ).proc("main")
        delta = engine.legal_transformations(const_prop.pattern, proc)
        assert {inst.index for inst in delta} == {4, 5}
        from dataclasses import replace

        limited = replace(const_prop, choose=make_site_chooser([4]))
        out, applied = engine.run_optimization(limited, proc)
        assert [inst.index for inst in applied] == [4]
        assert out.stmt_at(5) == Assign(VarLhs(Var("y")), Var("a"))

    def test_choose_cannot_smuggle_extra_sites(self, engine):
        # Definition 2 intersects choose's output with Delta.
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl x;
              a := 1;
              x := a;
              return x;
            }
            """
        ).proc("main")

        def evil_choose(delta, p):
            bogus = TransformationInstance(0, freeze_subst({"X": Var("x"), "Y": Var("a"), "C": Const(9)}))
            return list(delta) + [bogus]

        from dataclasses import replace

        evil = replace(const_prop, choose=evil_choose)
        out, applied = engine.run_optimization(evil, proc)
        assert all(inst.index != 0 for inst in applied)

    def test_pre_latest_placement(self, engine):
        # Two legal skips on the same path: only the later one is chosen.
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl x;
              a := 1;
              skip;
              skip;
              x := a + n;
              return x;
            }
            """
        ).proc("main")
        delta = engine.legal_transformations(pre_duplicate.pattern, proc)
        indices = {inst.index for inst in delta if dict(inst.theta).get("X") == Var("x")}
        assert {3, 4} <= indices
        chosen = pre_duplicate.choose(delta, proc)
        chosen_x = [i for i in chosen if dict(i.theta).get("X") == Var("x")]
        assert all(inst.index == 4 for inst in chosen_x)


class TestAlgebraicEngine:
    def test_add_zero(self, engine):
        proc = parse_program(
            """
            main(n) {
              decl x;
              x := n + 0;
              return x;
            }
            """
        ).proc("main")
        out, applied = engine.run_optimization(add_zero_right, proc)
        assert len(applied) == 1
        assert out.stmt_at(1) == Assign(VarLhs(Var("x")), Var("n"))

    def test_mul_zero(self, engine):
        proc = parse_program(
            """
            main(n) {
              decl x;
              x := n * 0;
              return x;
            }
            """
        ).proc("main")
        out, applied = engine.run_optimization(mul_zero_right, proc)
        assert out.stmt_at(1) == Assign(VarLhs(Var("x")), Const(0))


class TestConstBranch:
    def test_branch_on_known_constant(self, engine):
        proc = parse_program(
            """
            main(n) {
              decl f;
              decl x;
              f := 0;
              if f goto 4 else 5;
              x := 1;
              x := 2;
              return x;
            }
            """
        ).proc("main")
        out, applied = engine.run_optimization(const_branch, proc)
        assert len(applied) == 1
        stmt = out.stmt_at(3)
        assert stmt.cond == Const(0)
        assert run_program(parse_program(_wrap(out)), 0) == 2

    def test_redefined_flag_not_rewritten(self, engine):
        proc = parse_program(
            """
            main(n) {
              decl f;
              f := 0;
              f := n;
              if f goto 4 else 4;
              return f;
            }
            """
        ).proc("main")
        out, applied = engine.run_optimization(const_branch, proc)
        assert applied == []
