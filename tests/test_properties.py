"""Property-based tests (hypothesis) on the core data structures.

Invariants covered:

* printer/parser round-trip on arbitrary generated programs;
* interpreter determinism and fuel monotonicity;
* the random program generator only produces valid programs;
* E-graph: asserted equalities are reflected, pop restores state exactly,
  congruence is a congruence;
* clausification preserves ground (un)satisfiability on small formulas via
  a brute-force propositional oracle;
* pattern matching: match-then-instantiate is the identity.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.il.interp import ExecError, Interpreter, OutOfFuel
from repro.il.parser import parse_program
from repro.il.printer import program_to_str
from repro.il.program import Program
from repro.logic.formulas import (
    And,
    Clause,
    Eq,
    Implies,
    Literal,
    Not,
    Or,
    Pred,
    clausify,
)
from repro.logic.terms import App, IntConst, LVar, mk, subst, free_vars
from repro.prover.egraph import EGraph


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------

program_configs = st.builds(
    GeneratorConfig,
    num_vars=st.integers(1, 4),
    num_stmts=st.integers(1, 14),
    num_branches=st.integers(0, 3),
    allow_pointers=st.booleans(),
)


@st.composite
def programs(draw):
    config = draw(program_configs)
    seed = draw(st.integers(0, 10_000))
    generator = ProgramGenerator(config, seed=seed)
    return Program((generator.gen_proc(),))


class TestProgramProperties:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_generator_produces_valid_programs(self, program):
        program.validate()

    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_roundtrip(self, program):
        assert parse_program(program_to_str(program)) == program

    @given(programs(), st.integers(-5, 5))
    @settings(max_examples=60, deadline=None)
    def test_interpreter_deterministic(self, program, arg):
        def run():
            try:
                return ("value", Interpreter(program).run(arg, fuel=20_000))
            except ExecError as e:
                return ("stuck", None)
            except OutOfFuel:
                return ("fuel", None)

        assert run() == run()

    @given(programs(), st.integers(-5, 5))
    @settings(max_examples=40, deadline=None)
    def test_fuel_monotone(self, program, arg):
        # If a run finishes with little fuel, more fuel gives the same value.
        interp = Interpreter(program)
        try:
            small = interp.run(arg, fuel=5_000)
        except (ExecError, OutOfFuel):
            return
        assert interp.run(arg, fuel=50_000) == small

    @given(programs(), st.integers(-5, 5))
    @settings(max_examples=40, deadline=None)
    def test_trace_steps_are_consistent(self, program, arg):
        interp = Interpreter(program)
        trace = interp.trace(arg, fuel=100)
        for before, after in zip(trace, trace[1:]):
            result = interp.step(before)
            assert result.state == after  # type: ignore[union-attr]


# ---------------------------------------------------------------------------
# E-graph
# ---------------------------------------------------------------------------

_consts = [App(name) for name in "abcdef"]
terms = st.recursive(
    st.sampled_from(_consts) | st.integers(0, 3).map(IntConst),
    lambda inner: st.builds(lambda f, a: App(f, (a,)), st.sampled_from(["f", "g"]), inner),
    max_leaves=4,
)

equations = st.lists(st.tuples(terms, terms), min_size=0, max_size=8)


class TestEGraphProperties:
    @given(equations)
    @settings(max_examples=80, deadline=None)
    def test_asserted_equalities_hold(self, eqs):
        e = EGraph()
        asserted = []
        for lhs, rhs in eqs:
            if e.assert_eq(lhs, rhs):
                asserted.append((lhs, rhs))
            else:
                break
        for lhs, rhs in asserted:
            assert e.are_equal(lhs, rhs)

    @given(equations, equations)
    @settings(max_examples=60, deadline=None)
    def test_pop_restores_equalities(self, base, extra):
        e = EGraph()
        for lhs, rhs in base:
            if not e.assert_eq(lhs, rhs):
                return
        snapshot = [(l, r, e.are_equal(l, r)) for l, r in _pairs(base)]
        e.push()
        for lhs, rhs in extra:
            if not e.assert_eq(lhs, rhs):
                break
        e.pop()
        for lhs, rhs, was_equal in snapshot:
            assert e.are_equal(lhs, rhs) == was_equal

    @given(equations, terms, terms)
    @settings(max_examples=60, deadline=None)
    def test_congruence_property(self, eqs, t1, t2):
        e = EGraph()
        for lhs, rhs in eqs:
            if not e.assert_eq(lhs, rhs):
                return
        if e.are_equal(t1, t2):
            assert e.are_equal(App("f", (t1,)), App("f", (t2,)))

    @given(equations)
    @settings(max_examples=60, deadline=None)
    def test_equality_is_symmetric_transitive(self, eqs):
        e = EGraph()
        for lhs, rhs in eqs:
            if not e.assert_eq(lhs, rhs):
                return
        pairs = _pairs(eqs)
        for a, b in pairs:
            assert e.are_equal(a, b) == e.are_equal(b, a)
        for a, b in pairs:
            for c, d in pairs:
                if e.are_equal(a, b) and e.are_equal(b, c):
                    assert e.are_equal(a, c)


def _pairs(eqs):
    seen = []
    for lhs, rhs in eqs:
        seen.append(lhs)
        seen.append(rhs)
    return list(itertools.combinations(seen[:8], 2))


# ---------------------------------------------------------------------------
# Clausification vs. a brute-force propositional oracle
# ---------------------------------------------------------------------------

_atoms = [Pred(name) for name in "pqr"]

formulas = st.recursive(
    st.sampled_from(_atoms),
    lambda inner: st.one_of(
        inner.map(Not),
        st.tuples(inner, inner).map(lambda ab: And(ab)),
        st.tuples(inner, inner).map(lambda ab: Or(ab)),
        st.tuples(inner, inner).map(lambda ab: Implies(*ab)),
    ),
    max_leaves=6,
)


def _eval_formula(f, assignment):
    if isinstance(f, Pred):
        return assignment[f.name]
    if isinstance(f, Not):
        return not _eval_formula(f.body, assignment)
    if isinstance(f, And):
        return all(_eval_formula(p, assignment) for p in f.parts)
    if isinstance(f, Or):
        return any(_eval_formula(p, assignment) for p in f.parts)
    if isinstance(f, Implies):
        return (not _eval_formula(f.hyp, assignment)) or _eval_formula(f.conc, assignment)
    raise TypeError(f)


def _eval_clauses(clauses, assignment):
    for clause in clauses:
        ok = False
        for lit in clause.literals:
            value = assignment[lit.atom.name]
            if lit.positive == value:
                ok = True
                break
        if not ok:
            return False
    return True


class TestClausification:
    @given(formulas)
    @settings(max_examples=120, deadline=None)
    def test_cnf_equivalent_on_propositional_formulas(self, f):
        clauses = clausify(f)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("pqr", bits))
            assert _eval_formula(f, assignment) == _eval_clauses(clauses, assignment)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class TestTermProperties:
    @given(terms)
    @settings(max_examples=60, deadline=None)
    def test_subst_identity_on_ground(self, t):
        assert subst(t, {"x": IntConst(0)}) == t

    @given(terms)
    @settings(max_examples=60, deadline=None)
    def test_ground_terms_have_no_free_vars(self, t):
        assert free_vars(t) == frozenset()
