"""Tests for the textual Cobalt concrete syntax (paper-style notation)."""

import pytest

from repro.il.parser import parse_program
from repro.il.ast import Var, Const
from repro.cobalt.dsl import BackwardPattern, ForwardPattern, PureAnalysis
from repro.cobalt.engine import CobaltEngine
from repro.cobalt.guards import GAnd, GLabel, GNot, GOr
from repro.cobalt.labels import standard_registry
from repro.cobalt.parser import (
    CobaltSyntaxError,
    parse_guard,
    parse_optimization,
    parse_pure_analysis,
    parse_witness,
)
from repro.cobalt.witness import (
    Conj,
    EqualExceptVar,
    NotPointedTo,
    TrueWitness,
    VarEqConst,
    VarEqExpr,
    VarEqVar,
)

CONST_PROP_SRC = """
forward optimization constProp {
  stmt(Y := C)
  followed by
  !mayDef(Y)
  until
  X := Y  =>  X := C
  with witness
  eta(Y) == C
}
"""

DAE_SRC = """
backward optimization deadAssignElim {
  (stmt(X := ...) || stmt(return ...)) && !mayUse(X)
  preceded by
  !mayUse(X)
  since
  X := E  =>  skip
  with witness
  etaOld/X == etaNew/X
}
"""

TAINT_SRC = """
analysis taintedness {
  stmt(decl X)
  followed by
  !stmt(... := &X)
  defines
  notTainted(X)
  with witness
  notPointedTo(X)
}
"""


class TestOptimizationParsing:
    def test_const_prop_shape(self):
        pattern = parse_optimization(CONST_PROP_SRC)
        assert isinstance(pattern, ForwardPattern)
        assert pattern.name == "constProp"
        assert isinstance(pattern.witness, VarEqConst)
        assert isinstance(pattern.psi2, GNot)

    def test_parsed_const_prop_behaves_like_library_version(self):
        from repro.opts import const_prop
        from repro.cobalt.dsl import Optimization

        pattern = parse_optimization(CONST_PROP_SRC)
        engine = CobaltEngine(standard_registry())
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl c;
              a := 2;
              c := a;
              return c;
            }
            """
        ).proc("main")
        parsed_delta = engine.legal_transformations(pattern, proc)
        library_delta = engine.legal_transformations(const_prop.pattern, proc)
        assert parsed_delta == library_delta
        assert len(parsed_delta) == 1

    def test_dae_shape(self):
        pattern = parse_optimization(DAE_SRC)
        assert isinstance(pattern, BackwardPattern)
        assert isinstance(pattern.witness, EqualExceptVar)
        assert isinstance(pattern.psi1, GAnd)
        assert isinstance(pattern.psi1.parts[0], GOr)

    def test_parsed_dae_transforms(self):
        pattern = parse_optimization(DAE_SRC)
        engine = CobaltEngine(standard_registry())
        proc = parse_program(
            """
            main(n) {
              decl x;
              x := 1;
              x := 2;
              return x;
            }
            """
        ).proc("main")
        delta = engine.legal_transformations(pattern, proc)
        assert any(inst.index == 1 for inst in delta)

    def test_parsed_pattern_proves_sound(self):
        from repro.prover import ProverConfig
        from repro.verify import SoundnessChecker

        pattern = parse_optimization(CONST_PROP_SRC)
        checker = SoundnessChecker(config=ProverConfig(timeout_s=90))
        assert checker.check_pattern(pattern).sound

    def test_missing_clause_rejected(self):
        with pytest.raises(CobaltSyntaxError):
            parse_optimization("forward optimization x { stmt(Y := C) until X := Y => X := C with witness true }")

    def test_missing_arrow_rejected(self):
        with pytest.raises(CobaltSyntaxError):
            parse_optimization(
                "forward optimization x { true followed by true until skip with witness true }"
            )


class TestAnalysisParsing:
    def test_taintedness(self):
        analysis = parse_pure_analysis(TAINT_SRC)
        assert isinstance(analysis, PureAnalysis)
        assert analysis.label_name == "notTainted"
        assert isinstance(analysis.witness, NotPointedTo)

    def test_parsed_analysis_runs(self):
        analysis = parse_pure_analysis(TAINT_SRC)
        engine = CobaltEngine(standard_registry())
        proc = parse_program(
            """
            main(n) {
              decl a;
              decl p;
              p := &a;
              return n;
            }
            """
        ).proc("main")
        labeling = engine.run_pure_analysis(analysis, proc)
        # p stays untainted everywhere after its decl; a is tainted after node 2.
        assert labeling.has(2, "notTainted", (Var("p"),))
        assert labeling.has(2, "notTainted", (Var("a"),))
        assert not labeling.has(3, "notTainted", (Var("a"),))


class TestGuardSyntax:
    def test_precedence(self):
        guard = parse_guard("!mayDef(Y) && !mayUse(Y) || true")
        assert isinstance(guard, GOr)

    def test_parentheses(self):
        guard = parse_guard("!(mayDef(Y) || mayUse(Y))")
        assert isinstance(guard, GNot)
        assert isinstance(guard.body, GOr)

    def test_stmt_atom_with_nested_parens(self):
        guard = parse_guard("stmt(X := P(...))")
        assert isinstance(guard, GLabel) and guard.name == "stmt"

    def test_label_with_two_args(self):
        guard = parse_guard("exprUses(E, X)")
        assert guard == GLabel("exprUses", (__import__("repro.cobalt.patterns", fromlist=["ExprPat"]).ExprPat("E"), __import__("repro.cobalt.patterns", fromlist=["VarPat"]).VarPat("X")))

    def test_equality_atom(self):
        guard = parse_guard("X == Y")
        from repro.cobalt.guards import GEq

        assert isinstance(guard, GEq)

    def test_trailing_junk_rejected(self):
        with pytest.raises(CobaltSyntaxError):
            parse_guard("true true")


class TestWitnessSyntax:
    @pytest.mark.parametrize(
        "text,cls",
        [
            ("true", TrueWitness),
            ("eta(Y) == C", VarEqConst),
            ("eta(X) == eta(Y)", VarEqVar),
            ("eta(X) == eta(E)", VarEqExpr),
            ("etaOld/X == etaNew/X", EqualExceptVar),
            ("notPointedTo(X)", NotPointedTo),
            ("eta(X) == eta(E) && notPointedTo(X)", Conj),
        ],
    )
    def test_forms(self, text, cls):
        assert isinstance(parse_witness(text), cls)

    def test_mismatched_up_to_vars_rejected(self):
        with pytest.raises(CobaltSyntaxError):
            parse_witness("etaOld/X == etaNew/Y")

    def test_unknown_form_rejected(self):
        with pytest.raises(CobaltSyntaxError):
            parse_witness("eta is nice")
