"""E7 — end-to-end semantic preservation (differential interpretation).

For every proven-sound optimization: generate programs, optimize, interpret
original and optimized side by side over an input range, and demand zero
mismatches (the paper's semantic-equivalence notion, checked empirically).
The benchmark also records campaign throughput and, as a sensitivity
control, confirms the harness *does* flag a known-unsound transformation.
"""

import pytest

from repro.il.generator import GeneratorConfig
from repro.fuzz import differential_campaign
from repro.opts import const_prop, const_prop_pt, copy_prop, cse, dae, load_elim
from repro.opts.buggy import assign_removal_overbroad

_SUMMARY = []

CAMPAIGNS = [
    (const_prop, GeneratorConfig()),
    (const_prop_pt, GeneratorConfig(allow_pointers=True)),
    (copy_prop, GeneratorConfig()),
    (cse, GeneratorConfig()),
    (dae, GeneratorConfig()),
    (load_elim, GeneratorConfig(allow_pointers=True, num_stmts=14)),
]


@pytest.mark.parametrize("opt,config", CAMPAIGNS, ids=lambda v: getattr(v, "name", ""))
def test_differential(benchmark, engine, opt, config):
    def run():
        return differential_campaign(
            opt, seeds=range(30), config=config, engine=engine
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok, "\n".join(result.mismatches[:2])
    _SUMMARY.append((opt.name, result))


def test_sensitivity_control(engine):
    result = differential_campaign(
        assign_removal_overbroad, seeds=range(60), engine=engine
    )
    assert result.mismatches, "harness failed to flag an unsound transformation"


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _SUMMARY:
        return
    from _report import emit

    lines = ["=== E7: differential campaigns (30 programs x 7 inputs each) ==="]
    lines.append(
        f"{'optimization':16s} {'programs':>9s} {'transfos':>9s} {'runs':>6s} {'mismatches':>11s}"
    )
    for name, result in _SUMMARY:
        lines.append(
            f"{name:16s} {result.programs:9d} {result.transformations:9d} "
            f"{result.runs:6d} {len(result.mismatches):11d}"
        )
    emit("E7_differential", "\n".join(lines))
