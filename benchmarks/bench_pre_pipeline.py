"""E5 — the section 2.3 PRE example.

Paper: the partially redundant ``x := a + b`` is eliminated "by making a
copy of the assignment x := a + b in the false leg of the branch.  Now the
assignment after the branch is fully redundant and can be removed by
running CSE followed by self-assignment removal."

This harness runs the three-pass pipeline on the paper's fragment, checks
the expected rewrites happen (and behaviour is preserved), and measures the
pipeline; it also counts dynamic ``a + b`` evaluations before and after to
demonstrate the redundancy actually went away on the else path.
"""

import pytest

from repro.il.ast import Assign, BinOp, Skip
from repro.il.interp import Interpreter, Next
from repro.il.parser import parse_program
from repro.il.program import Program
from repro.opts import pre_pipeline

PROGRAM = """
main(n) {
  decl b;
  decl a;
  decl x;
  b := n;
  if n goto 5 else 8;
  a := 1;
  x := a + b;
  if 1 goto 9 else 9;
  skip;
  x := a + b;
  return x;
}
"""


def _count_adds_executed(program: Program, arg: int) -> int:
    interp = Interpreter(program)
    state = interp.initial_state(arg)
    adds = 0
    for _ in range(10_000):
        stmt = program.main.stmt_at(state.index)
        if isinstance(stmt, Assign) and isinstance(stmt.rhs, BinOp) and stmt.rhs.op == "+":
            adds += 1
        result = interp.step(state)
        if not isinstance(result, Next):
            break
        state = result.state
    return adds


def test_pre_pipeline(benchmark, engine):
    program = parse_program(PROGRAM)

    def run():
        current = program.main
        counts = {}
        for opt in pre_pipeline():
            current, applied = engine.run_optimization(opt, current)
            counts[opt.name] = len(applied)
        return current, counts

    optimized_proc, counts = benchmark(run)
    optimized = program.with_proc(optimized_proc)

    # The skip in the else leg became x := a + b; the original trailing
    # computation collapsed to a skip.
    assert counts["preDuplicate"] >= 1
    assert counts["cse"] >= 1
    assert counts["selfAssignRemoval"] >= 1
    assert isinstance(optimized.main.stmt_at(9), Skip)

    from repro.il.interp import run_program as _rp
    from repro.il import run_program

    rows = []
    for n in (0, 1, 5):
        assert run_program(program, n) == run_program(optimized, n)
        rows.append((n, _count_adds_executed(program, n), _count_adds_executed(optimized, n)))

    from _report import emit

    lines = ["=== E5: dynamic a+b evaluations on the section 2.3 fragment ==="]
    lines.append(
        "pipeline rewrites: "
        + ", ".join(f"{k}={v}" for k, v in counts.items())
    )
    lines.append(f"{'input':>5s} {'before':>7s} {'after':>6s}")
    for n, before, after in rows:
        lines.append(f"{n:5d} {before:7d} {after:6d}")
    emit("E5_pre_pipeline", "\n".join(lines))
    # On the true path (n != 0): two additions before, one after.
    true_paths = [r for r in rows if r[0] != 0]
    assert all(before == 2 and after == 1 for _, before, after in true_paths)
