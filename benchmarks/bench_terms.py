"""E8 — the hash-consed term substrate (docs/TERMS.md).

Two families of rows, each racing the interned representation against the
pre-interning one (:mod:`repro.logic.reference` — the original dataclass
semantics, with instrumented walkers counting structural node visits):

* **microbenchmarks** over a corpus of deeply shared terms — ``hash``,
  ``==``, ``free_vars``, ``subst``, and build+dedup ("interning").  On the
  reference side every one of these traverses the tree; on the interned
  side they are cached-int reads, pointer comparisons, or memo hits.  The
  corpus is an iterated pairing (``t_{n+1} = pair(f(t_n), t_n)``), so its
  *tree* size is exponential in the depth while its *DAG* size is linear —
  the exact shape maximal sharing exists to exploit (and the shape the
  verifier's state/map terms actually take).
* **obligation encoding** — building and clausifying every obligation of a
  slice of the shipped suite, with the transformation memos on vs. disabled
  (:func:`repro.logic.intern.structural_reference`).  This is the encode
  phase E1's cold rows pay per optimization.

The asserts are the PR's acceptance floor: ≥2x on the interning and
encoding races, and strictly fewer structural visits wherever the reference
side walks (hash/eq/free_vars/subst).
"""

import time

import pytest

from repro.logic import intern as I
from repro.logic import reference as ref
from repro.logic.formulas import clausify
from repro.logic.terms import App, IntConst, LVar, free_vars, subst, term_size
from repro.opts import ALL_OPTIMIZATIONS
from repro.cobalt.dsl import BackwardPattern
from repro.cobalt.labels import standard_registry
from repro.verify.obligations import ObligationBuilder

_ROWS = []

#: (fn, depth) — DAG of ~3·depth distinct nodes whose tree unfolding has
#: ~2^depth leaves.  Depth 12 keeps one reference hash walk ~10k visits.
_DEPTH = 12
_REPEATS = 40

#: Encoding slice: forward (constProp, cse) and backward (deadAssignElim)
#: patterns; none with semantic labels (those need a registered analysis).
_ENCODE_ROWS = ("constProp", "cse", "deadAssignElim")
_ENCODE_REPEATS = 3


def _corpus(mod):
    """The shared-spine corpus, built through ``mod``'s constructors."""
    terms = []
    t = mod.App("a")
    for i in range(_DEPTH):
        t = mod.App("pair", (mod.App("f", (t,)), t))
        terms.append(t)
    u = mod.App("g", (mod.LVar("x"), mod.IntConst(3)))
    for i in range(_DEPTH // 2):
        u = mod.App("pair", (u, mod.App("f", (u,))))
        terms.append(u)
    return terms


def _timed(fn, repeats):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def _row(name, interned_s, reference_s, i_visits, r_visits, floor=None):
    speedup = reference_s / interned_s if interned_s else float("inf")
    _ROWS.append((name, interned_s, reference_s, speedup, i_visits, r_visits))
    assert i_visits < r_visits, (
        f"{name}: interned side visited {i_visits} nodes, reference "
        f"{r_visits} — not strictly fewer"
    )
    if floor is not None:
        assert speedup >= floor, (
            f"{name}: {speedup:.2f}x < required {floor}x"
        )
    return speedup


def test_intern_build_dedup(benchmark):
    """Build the corpus and deduplicate it.  Interned: construction *is*
    deduplication (table probes on cached child hashes).  Reference:
    construct, then dedup through a set — each insert structurally hashes
    the whole tree, which is the hidden cost every pre-interning dict/set
    of terms paid."""

    import repro.logic.terms as iterms

    def interned():
        return len(set(_corpus(iterms)))

    mark = I.STATS.snapshot()
    i_s, i_n = _timed(interned, _REPEATS)
    d = I.STATS.delta(mark)
    # Interned "visits": constructor calls (all table probes, O(1) each).
    i_visits = d["term_hits"] + d["term_misses"]

    ref.reset_visits()

    def reference_counted():
        terms = _corpus(ref)
        seen = set()
        for t in terms:
            seen.add(ref.ref_hash(t))
        return len(seen)

    r_s, r_n = _timed(reference_counted, 3)
    r_visits = ref.VISITS
    assert i_n == r_n, "both sides must dedup to the same corpus"
    _row(
        "build+dedup (interning)",
        i_s,
        r_s,
        max(1, i_visits // _REPEATS),
        r_visits // 3,
        floor=2.0,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_hash_cached(benchmark):
    import repro.logic.terms as iterms

    terms = _corpus(iterms)
    rterms = _corpus(ref)

    def interned():
        return sum(hash(t) & 1 for t in terms)

    ref.reset_visits()

    def reference():
        return sum(ref.ref_hash(t) & 1 for t in rterms)

    i_s, _ = _timed(interned, _REPEATS)
    r_s, _ = _timed(reference, 3)
    # Interned hash reads one cached slot per term: len(terms) "visits".
    _row("hash", i_s, r_s, len(terms), ref.VISITS // 3, floor=2.0)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_eq_identity(benchmark):
    import repro.logic.terms as iterms

    terms = _corpus(iterms)
    terms2 = _corpus(iterms)
    rterms = _corpus(ref)
    rterms2 = _corpus(ref)

    def interned():
        return sum(a == b for a in terms for b in terms2)

    ref.reset_visits()

    def reference():
        return sum(ref.ref_eq(a, b) for a in rterms for b in rterms2)

    i_s, i_n = _timed(interned, _REPEATS)
    r_s, r_n = _timed(reference, 3)
    assert i_n == r_n
    _row("eq (all pairs)", i_s, r_s, len(terms) ** 2, ref.VISITS // 3, floor=2.0)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_free_vars_cached(benchmark):
    import repro.logic.terms as iterms

    terms = _corpus(iterms)
    rterms = _corpus(ref)

    def interned():
        return sum(len(free_vars(t)) for t in terms)

    ref.reset_visits()

    def reference():
        return sum(len(ref.ref_free_vars(t)) for t in rterms)

    i_s, i_n = _timed(interned, _REPEATS)
    r_s, r_n = _timed(reference, 3)
    assert i_n == r_n
    _row("free_vars", i_s, r_s, len(terms), ref.VISITS // 3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_subst_memoized(benchmark):
    import repro.logic.terms as iterms

    terms = _corpus(iterms)
    rterms = _corpus(ref)
    binding = {"x": iterms.App("f", (iterms.App("a"),))}
    rbinding = {"x": ref.App("f", (ref.App("a"),))}

    def interned():
        return sum(term_size(subst(t, binding)) for t in terms)

    ref.reset_visits()

    def reference():
        return sum(ref.term_size(ref.ref_subst(t, rbinding)) for t in rterms)

    mark = I.STATS.snapshot()
    i_s, i_n = _timed(interned, _REPEATS)
    d = I.STATS.delta(mark)
    i_visits = (d["subst_hits"] + d["subst_misses"]) // _REPEATS + len(terms)
    r_s, r_n = _timed(reference, 3)
    assert i_n == r_n, "substitution must agree across representations"
    _row("subst", i_s, r_s, i_visits, ref.VISITS // 3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _encode_workload():
    """Build and clausify every obligation of the slice, the way the
    checker does per statement-kind case (clausify of goal and seeds)."""
    by_name = {o.name: o for o in ALL_OPTIMIZATIONS}
    builder = ObligationBuilder(standard_registry(), {})
    total = 0
    for name in _ENCODE_ROWS:
        pattern = by_name[name].pattern
        if isinstance(pattern, BackwardPattern):
            obligations = builder.backward_obligations(pattern)
        else:
            obligations = builder.forward_obligations(pattern)
        for ob in obligations:
            total += len(clausify(ob.goal, origin=ob.name, prefix="sk_goal_"))
            for i, seed in enumerate(ob.seeds):
                total += len(
                    clausify(seed, origin="case-split-seed", prefix=f"sk_seed{i}_")
                )
    return total


def test_obligation_encoding(benchmark):
    """The encode phase with memos on vs the structural-reference pipeline.
    Also cross-checks that both pipelines produce identical clauses."""
    with I.structural_reference():
        expected = _encode_workload()
        start = time.perf_counter()
        for _ in range(_ENCODE_REPEATS):
            assert _encode_workload() == expected
        r_s = (time.perf_counter() - start) / _ENCODE_REPEATS

    mark = I.STATS.snapshot()
    assert _encode_workload() == expected  # warm the memo once
    start = time.perf_counter()
    for _ in range(_ENCODE_REPEATS):
        assert _encode_workload() == expected
    i_s = (time.perf_counter() - start) / _ENCODE_REPEATS
    d = I.STATS.delta(mark)
    assert d["clausify_hits"] > 0, "encode workload must hit the clausify memo"
    _ROWS.append(
        ("obligation encoding", i_s, r_s, r_s / i_s if i_s else float("inf"), None, None)
    )
    assert r_s / i_s >= 2.0, (
        f"obligation encoding: {r_s / i_s:.2f}x < required 2x"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS
    from _report import emit

    lines = ["=== E8: hash-consed terms vs reference dataclasses ==="]
    lines.append(
        f"{'operation':28s} {'interned':>10s} {'reference':>10s} {'speedup':>8s} "
        f"{'i-visits':>9s} {'r-visits':>9s}"
    )
    for name, i_s, r_s, speedup, iv, rv in _ROWS:
        iv_c = f"{iv:9,d}" if iv is not None else "        -"
        rv_c = f"{rv:9,d}" if rv is not None else "        -"
        lines.append(
            f"{name:28s} {i_s * 1e3:8.3f}ms {r_s * 1e3:8.3f}ms {speedup:7.1f}x "
            f"{iv_c} {rv_c}"
        )
    lines.append(
        "visits = structural nodes walked per operation batch "
        "(interned side: cached-slot reads / table probes)"
    )
    lines.append(I.STATS.summary())
    rows = [
        {
            "operation": name,
            "interned_s": round(i_s, 6),
            "reference_s": round(r_s, 6),
            "speedup": round(speedup, 2),
            "interned_visits": iv,
            "reference_visits": rv,
        }
        for name, i_s, r_s, speedup, iv, rv in _ROWS
    ]
    emit(
        "E8_terms",
        "\n".join(lines),
        rows=rows,
        config={"repeats": _REPEATS, "encode_repeats": _ENCODE_REPEATS},
    )
