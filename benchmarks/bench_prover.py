"""Supplementary prover microbenchmarks.

Not a paper table, but the substrate the E1 numbers rest on: E-graph merge
throughput, E-matching over growing term sets, map-theory proof latency,
and the full background-axiom clausification cost.
"""

import pytest

from repro.logic.formulas import Eq, Forall, Implies, Not, Or, Pred
from repro.logic.terms import App, IntConst, LVar, mk
from repro.prover import Prover, ProverConfig
from repro.prover.egraph import EGraph
from repro.prover.ematch import ematch


def test_egraph_merge_chain(benchmark):
    terms = [App(f"c{i}") for i in range(300)]

    def run():
        e = EGraph()
        for t1, t2 in zip(terms, terms[1:]):
            e.assert_eq(t1, t2)
        assert e.are_equal(terms[0], terms[-1])

    benchmark(run)


def test_egraph_congruence_cascade(benchmark):
    # Merging the leaves must collapse a tower of applications.
    def run():
        e = EGraph()
        a, b = App("a"), App("b")
        ta, tb = a, b
        for _ in range(60):
            ta, tb = mk("f", ta), mk("f", tb)
        e.add_term(ta)
        e.add_term(tb)
        e.assert_eq(a, b)
        assert e.are_equal(ta, tb)

    benchmark(run)


def test_egraph_push_pop(benchmark):
    a, b = App("a"), App("b")

    def run():
        e = EGraph()
        e.add_term(mk("f", a))
        e.add_term(mk("f", b))
        for _ in range(200):
            e.push()
            e.assert_eq(a, b)
            e.pop()

    benchmark(run)


def test_ematch_throughput(benchmark):
    e = EGraph()
    x = LVar("x")
    for i in range(150):
        e.add_term(mk("f", App(f"c{i}")))

    def run():
        return len(ematch(e, (mk("f", x),)))

    assert benchmark(run) == 150


def test_map_theory_proof(benchmark):
    m, k, v, k2 = (LVar(n) for n in ("m", "k", "v", "k2"))
    axioms = [
        Forall(("m", "k", "v"), Eq(mk("select", mk("update", m, k, v), k), v),
               ((mk("update", m, k, v),),)),
        Forall(
            ("m", "k", "v", "k2"),
            Or((Eq(k, k2), Eq(mk("select", mk("update", m, k, v), k2), mk("select", m, k2)))),
            ((mk("select", mk("update", m, k, v), k2),),),
        ),
    ]
    base = App("m0")
    store = base
    keys = [App(f"k{i}") for i in range(6)]
    for i, key in enumerate(keys):
        store = mk("update", store, key, IntConst(i))
    prover = Prover(axioms, config=ProverConfig(timeout_s=30))
    distinct = [Not(Eq(k1, k2)) for i, k1 in enumerate(keys) for k2 in keys[i + 1 :]]
    goal = Implies(
        _conj(distinct),
        Eq(mk("select", store, keys[0]), IntConst(0)),
    )

    def run():
        return prover.prove(goal)

    result = benchmark(run)
    assert result.proved


def _conj(parts):
    from repro.logic.formulas import And, Top

    return And(tuple(parts)) if parts else Top()


def test_background_axiom_clausification(benchmark):
    from repro.verify.encode import CONSTRUCTORS, all_axioms

    def run():
        return Prover(all_axioms(), constructors=CONSTRUCTORS)

    prover = benchmark(run)
    assert len(prover._base_clauses) > 150
