"""E3 — debugging value (paper section 6).

Paper: "Our system in fact found several subtle problems in previous
versions of our optimizations", with redundant-load elimination vs. pointer
aliasing as the worked example.

This harness runs the checker over a zoo of subtly buggy variants and
prints the rejection table: which obligation caught each bug and how long
the (failed) proof attempt took.  Every row must come out REJECTED, and the
flagship section 6 bug must fail at F2 exactly as in the paper.
"""

import pytest

from repro.opts.buggy import ALL_BUGGY, load_elim_direct_assign

_ROWS = []


def test_all_buggy_variants_rejected(benchmark, checker):
    def run_all():
        return [(opt.name, checker.check_optimization(opt)) for opt in ALL_BUGGY]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _ROWS.extend(rows)
    for name, report in rows:
        assert not report.sound, f"buggy variant {name} was wrongly proven sound!"


def test_section6_bug_fails_at_f2(checker):
    report = checker.check_optimization(load_elim_direct_assign)
    failed = {r.obligation for r in report.failed_obligations()}
    assert "F2" in failed


_SYNTH = []


def test_counterexample_synthesis(benchmark):
    """Section 7 extension: turn rejections into runnable miscompilations."""
    from repro.verify.synthesize import find_counterexample
    from repro.opts.buggy import (
        assign_removal_overbroad,
        const_prop_no_pointers,
        dae_no_use_check,
    )

    targets = [assign_removal_overbroad, dae_no_use_check, const_prop_no_pointers]

    def run():
        return [(opt.name, find_counterexample(opt)) for opt in targets]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _SYNTH.extend(rows)
    for name, found in rows:
        assert found is not None, f"no counterexample synthesized for {name}"


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS
    from _report import emit

    lines = ["=== E3: seeded-bug variants, all rejected ==="]
    lines.append(f"{'buggy variant':34s} {'failed at':12s} {'time':>7s}")
    for name, report in _ROWS:
        failed = ",".join(r.obligation for r in report.failed_obligations()) or "-"
        lines.append(f"{name:34s} {failed:12s} {report.elapsed_s:6.2f}s")
    lines.append(f"{len(_ROWS)} buggy variants, 0 false acceptances")
    if _SYNTH:
        lines.append("")
        lines.append("synthesized counterexample programs (section 7 extension):")
        for name, found in _SYNTH:
            size = len(found.original.main.stmts)
            lines.append(
                f"  {name:34s} {size} statements, "
                f"main({found.argument}) {found.original_value!r} -> "
                f"{found.transformed_outcome}"
            )
    emit("E3_bug_catching", "\n".join(lines))
