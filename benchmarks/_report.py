"""Table emission for the benchmark harnesses.

Each experiment's table is printed (visible with ``-s`` or on failure) and
persisted under ``benchmarks/results/`` so EXPERIMENTS.md can reference the
latest measured numbers regardless of pytest's output capturing.
"""

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text)
