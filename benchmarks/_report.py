"""Table + JSON emission for the benchmark harnesses.

Each experiment's table is printed (visible with ``-s`` or on failure) and
persisted under ``benchmarks/results/`` so EXPERIMENTS.md can reference the
latest measured numbers regardless of pytest's output capturing.  Every
table is also mirrored as machine-readable ``BENCH_<name>.json`` — the
structured rows (when the harness provides them), the environment, and the
rendered table lines — so trajectory notes and external tooling never have
to screen-scrape the text files.
"""

import json
import platform
import sys
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str, rows=None, config=None) -> None:
    """Persist ``<name>.txt`` and ``BENCH_<name>.json``, and print the table.

    ``rows`` is any JSON-serializable structure of measured values (lists of
    row dicts by convention); ``config`` records the knobs that produced
    them (timeouts, kernels, modes).  Harnesses that only have a rendered
    table still get a JSON mirror via ``table``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {
        "bench": name,
        "generated_unix": round(time.time(), 3),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "config": config or {},
        "rows": rows if rows is not None else [],
        "table": text.splitlines(),
    }
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(text)
