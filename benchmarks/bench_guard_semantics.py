"""E6 — guard semantics: Definition 1 vs. the section 5.2 fixpoint engine.

The engine must compute exactly the path-quantified meaning of guards; the
oracle enumerates paths literally (exact on acyclic CFGs).  The benchmark
compares the two on generated programs — asserting agreement — and records
their relative cost (the fixpoint is polynomial; path enumeration blows up,
which is the reason the engine exists).
"""

import pytest

from repro.il.cfg import Cfg
from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.cobalt.labels import standard_registry
from repro.cobalt.semantics import guard_meaning_by_paths, is_acyclic
from repro.opts import const_prop, dae

REGISTRY = standard_registry()


def _acyclic_procs(count, size):
    procs = []
    seed = 0
    while len(procs) < count:
        proc = ProgramGenerator(
            GeneratorConfig(num_stmts=size, num_vars=3), seed=seed
        ).gen_proc()
        if is_acyclic(Cfg.build(proc)):
            procs.append(proc)
        seed += 1
    return procs


@pytest.mark.parametrize("opt", [const_prop, dae], ids=lambda o: o.name)
def test_engine_agrees_with_definition(benchmark, engine, opt):
    procs = _acyclic_procs(10, 10)

    def run_engine():
        return [
            engine.guard_facts(opt.pattern.psi1, opt.pattern.psi2, opt.direction, p)
            for p in procs
        ]

    engine_facts = benchmark(run_engine)
    compared = 0
    for proc, facts in zip(procs, engine_facts):
        oracle = guard_meaning_by_paths(
            opt.pattern.psi1, opt.pattern.psi2, opt.direction, proc, REGISTRY
        )
        assert facts == oracle
        compared += len(facts)
    _AGREEMENT.append((opt.name, compared))


_AGREEMENT = []


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from _report import emit

    nodes = sum(n for _, n in _AGREEMENT)
    lines = ["=== E6: engine fixpoint vs Definition 1 path oracle ==="]
    for name, count in _AGREEMENT:
        lines.append(f"{name:16s} agreed on all {count} node facts")
    lines.append(f"total node facts compared: {nodes}, disagreements: 0")
    emit("E6_guard_semantics", "\n".join(lines))


def test_oracle_cost(benchmark):
    """Path enumeration, for the record (same workload as the engine run)."""
    procs = _acyclic_procs(10, 10)
    pattern = const_prop.pattern

    def run_oracle():
        return [
            guard_meaning_by_paths(pattern.psi1, pattern.psi2, "forward", p, REGISTRY)
            for p in procs
        ]

    benchmark(run_oracle)
