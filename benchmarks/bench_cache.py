"""E11 — the tiered proof cache: cold vs. warm L1 vs. warm L2-only.

The tentpole claim of the tiered cache (docs/CACHING.md): a machine that
has never verified the suite, but can reach a cache daemon another machine
fed, replays the entire suite in under two seconds and at most two HTTP
round trips — with a canonical report byte-identical to proving from
scratch.  This harness measures the three regimes over the full shipped
suite against a real daemon on a loopback socket:

* **cold** — empty L1, no L2: full proof search;
* **warm L1** — sharded on-disk store populated by the cold run;
* **warm L2-only** — *no* local store at all; every verdict arrives over
  the wire in one batched suite-level multi-GET.
"""

import threading
import time

from repro.api import ProverOptions, VerifyOptions, verify_suite

CONFIG = ProverOptions(timeout_s=120)


def _run(**kwargs):
    start = time.monotonic()
    suite = verify_suite(VerifyOptions(prover=CONFIG, **kwargs))
    return suite, time.monotonic() - start


def test_tiered_cache(benchmark, tmp_path_factory):
    from repro.verify.netcache import CacheServer

    cache_dir = tmp_path_factory.mktemp("proof-cache")
    server = CacheServer(tmp_path_factory.mktemp("daemon-store"), port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        cold, cold_s = _run(cache_dir=str(cache_dir), cache_url=server.url)
        warm_l1, warm_l1_s = _run(cache_dir=str(cache_dir))
        warm_l2, warm_l2_s = _run(cache_url=server.url)
    finally:
        server.shutdown()
        server.server_close()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert not cold.failures()
    assert warm_l1.canonical() == cold.canonical()
    assert warm_l2.canonical() == cold.canonical()
    assert warm_l1.cache.stats.misses == 0, "warm L1 run missed the cache"
    assert warm_l2.cache.stats.misses == 0, "warm L2 run missed the cache"
    round_trips = warm_l2.cache.remote.stats.requests
    assert round_trips <= 2, f"warm L2 replay took {round_trips} round trips"
    assert warm_l2_s < 2.0, f"warm L2 replay took {warm_l2_s:.2f}s"

    from _report import emit

    rows = [
        {"regime": "cold (no cache)", "seconds": round(cold_s, 3),
         "round_trips": cold.cache.remote.stats.requests,
         "published": cold.cache.remote.stats.published},
        {"regime": "warm L1 (local store)", "seconds": round(warm_l1_s, 3),
         "round_trips": 0, "published": 0},
        {"regime": "warm L2-only (network)", "seconds": round(warm_l2_s, 3),
         "round_trips": round_trips,
         "published": warm_l2.cache.remote.stats.published},
    ]
    lines = [
        "=== E11: tiered proof cache — cold vs. warm L1 vs. warm L2-only ===",
        f"{'regime':24s} {'time':>9s} {'HTTP round trips':>17s}",
    ]
    for row in rows:
        lines.append(f"{row['regime']:24s} {row['seconds']:8.2f}s "
                     f"{row['round_trips']:17d}")
    lines.append(
        f"daemon store: {server.store.count()} object(s); canonical reports "
        f"byte-identical across all three regimes"
    )
    lines.append(
        f"warm L2-only budget: {round_trips} round trip(s) (<= 2), "
        f"{warm_l2_s:.2f}s (< 2s)"
    )
    emit(
        "E11_cache",
        "\n".join(lines),
        rows=rows,
        config={"prover_timeout_s": CONFIG.timeout_s,
                "suite": "full shipped suite", "daemon": "loopback, 1 shard"},
    )
