"""E10 — mass fuzzing: the axiom differential and the rule frontier.

Measures the fuzzing subsystem at benchmark scale (docs/FUZZING.md):

* the axiom-vs-interpreter oracle over a batch of ground probes — zero
  misproofs required, with probe throughput recorded;
* the rule frontier at seed 0 — verdict counts (sound/unsound/unknown/
  invalid), unique-rule ratio, and end-to-end campaign throughput, with a
  byte-identity check across two runs (the determinism claim the CI
  fuzz-smoke job re-checks against a golden file at smaller scale).

The frontier size here is a benchmark-friendly 140 rules (20 per family);
the headline E10 numbers at 1000 rules in EXPERIMENTS.md come from
``repro fuzz --seed 0 --cases 1000 --kind frontier``.
"""

import pytest

from repro.fuzz import axiom_campaign, frontier_campaign

from _report import emit

_SUMMARY = {}


def test_axiom_oracle(benchmark):
    report = benchmark.pedantic(
        lambda: axiom_campaign(0, 120), rounds=1, iterations=1
    )
    assert report.ok, report.canonical()
    _SUMMARY["axioms"] = report


def test_frontier(benchmark):
    report = benchmark.pedantic(
        lambda: frontier_campaign(0, 140), rounds=1, iterations=1
    )
    assert report.canonical() == frontier_campaign(0, 140).canonical(), (
        "frontier report is not byte-identical across runs"
    )
    _SUMMARY["frontier"] = report


def teardown_module(module):
    lines = ["E10: mass fuzzing (seed 0)", ""]
    ax = _SUMMARY.get("axioms")
    if ax is not None:
        lines.append(
            f"axiom differential : {ax.probes} probes / {ax.programs} programs"
            f" — {ax.true_proved} true proved, {ax.true_unproved} unproved"
            f" (incompleteness), {ax.false_rejected} false rejected,"
            f" {len(ax.misproofs)} MISPROOFS"
        )
    fr = _SUMMARY.get("frontier")
    if fr is not None:
        counts = fr.counts()
        lines.append(
            f"rule frontier      : {fr.cases} minted / {fr.unique} unique —"
            f" {counts['sound']} sound, {counts['unsound']} unsound,"
            f" {counts['unknown']} unknown, {counts['invalid']} invalid"
            f" (report byte-identical across two runs)"
        )
    emit("E10_fuzz", "\n".join(lines))
