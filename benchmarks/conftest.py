"""Shared fixtures for the benchmark suite."""

import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.prover import ProverConfig
from repro.verify import SoundnessChecker
from repro.cobalt.engine import CobaltEngine
from repro.cobalt.labels import standard_registry


@pytest.fixture(scope="session")
def checker():
    return SoundnessChecker(config=ProverConfig(timeout_s=120))


@pytest.fixture(scope="session")
def engine():
    return CobaltEngine(standard_registry())


@pytest.fixture(scope="session")
def reference_engine():
    """The retained naive-sweep solver (the E4 'before' column)."""
    return CobaltEngine(standard_registry(), mode="reference")
