"""E9 — prover-backend race: internal vs SMT-LIB vs portfolio.

The paper's architecture shipped every obligation to an external prover
(Simplify); this repository makes the external path one backend among
three (docs/BACKENDS.md).  This harness races them on a slice of the E1
obligation set and checks the two properties the portfolio design
promises:

* **agreement** — the portfolio's canonical report is byte-identical to
  the internal backend's on every row (the merge is a pure function of
  the legs' answers, and external ``sat`` never flips an internal proof);
  where a real SMT solver is installed and conclusive, the ``smtlib``
  backend's verdicts also agree with the internal prover's;
* **no-slower** — racing an external solver costs at most 10% wall-clock
  over the internal backend alone (plus a small absolute slack for
  process noise), even when the solver never answers in time.

Without a real solver on the machine the external leg is a scripted
stand-in that always answers ``unknown`` after a short delay — the
*worst useful case* for the portfolio (all overhead, no help) — and the
``smtlib`` agreement rows are skipped.
"""

import sys
import time

import pytest

from repro.api import ProverOptions, VerifyOptions
from repro.prover.backends import BackendSpec, SmtLibBackend, discover_solver
from repro.verify import SoundnessChecker
from repro.opts import ALL_OPTIMIZATIONS

#: Rows: the fast forward patterns plus one search-heavy row (cse), so the
#: overhead bound is tested on both ends of the E1 time range.
_ROW_NAMES = ["constProp", "constFold", "branchFold", "selfAssignRemoval", "cse"]
_ROWS = [o for o in ALL_OPTIMIZATIONS if o.name in _ROW_NAMES]

_PROVER = ProverOptions(timeout_s=120.0)

_INTERNAL = {}   # name -> (elapsed_s, canonical)
_PORTFOLIO = {}  # name -> (elapsed_s, canonical)
_SMTLIB = {}     # name -> (proved_obligations, conclusive, agree)
_SESSION = {}    # name -> row dict (session vs per-process discipline)
_SOLVER = {"cmd": None, "real": False}


@pytest.fixture(scope="module")
def solver_cmd(tmp_path_factory):
    """A real solver when installed, else the always-unknown stand-in."""
    cmd = discover_solver()
    if cmd is not None:
        _SOLVER.update(cmd=cmd, real=True)
        return cmd
    script = tmp_path_factory.mktemp("fake-solver") / "unknown.py"
    script.write_text("import time\ntime.sleep(0.05)\nprint('unknown')\n")
    cmd = (sys.executable, str(script))
    _SOLVER.update(cmd=cmd, real=False)
    return cmd


def _run(options, opt):
    checker = SoundnessChecker(options=options)
    start = time.monotonic()
    report = checker.check_optimization(opt)
    return time.monotonic() - start, report


@pytest.mark.parametrize("opt", _ROWS, ids=lambda o: o.name)
def test_internal_row(benchmark, opt):
    out = {}

    def run():
        out["result"] = _run(VerifyOptions(prover=_PROVER), opt)

    benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed, report = out["result"]
    assert report.sound, report.summary()
    _INTERNAL[opt.name] = (elapsed, report.canonical())


@pytest.mark.parametrize("opt", _ROWS, ids=lambda o: o.name)
def test_portfolio_row(benchmark, solver_cmd, opt):
    options = VerifyOptions(
        backend="portfolio", solver_cmd=solver_cmd, prover=_PROVER
    )
    out = {}

    def run():
        out["result"] = _run(options, opt)

    benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed, report = out["result"]
    assert report.sound, report.summary()
    _PORTFOLIO[opt.name] = (elapsed, report.canonical())


@pytest.mark.parametrize("opt", _ROWS, ids=lambda o: o.name)
def test_smtlib_agreement_row(opt):
    """Where the external solver is conclusive, it agrees with the internal
    prover.  Needs a real solver: the stand-in is never conclusive."""
    cmd = discover_solver()
    if cmd is None:
        pytest.skip("no SMT solver installed")
    backend = SmtLibBackend(
        BackendSpec(name="smtlib", solver_cmd=cmd, solver_timeout_s=120.0),
        _PROVER.to_config(),
    )
    from repro.cobalt.labels import standard_registry
    from repro.verify.obligations import ObligationBuilder

    obligations = ObligationBuilder(standard_registry()).forward_obligations(
        opt.pattern
    ) if opt.pattern.__class__.__name__ == "ForwardPattern" else None
    if obligations is None:
        pytest.skip("agreement row covers forward patterns")
    proved = conclusive = 0
    for ob in obligations:
        got, was_conclusive, _context = backend.run_cases(ob)
        if was_conclusive:
            conclusive += 1
            # every row here is internally proven sound, so a conclusive
            # external verdict must be a proof, never a countermodel
            assert got, f"{opt.name}/{ob.name}: solver contradicts internal proof"
            proved += 1
    _SMTLIB[opt.name] = (proved, conclusive, True)


@pytest.fixture(scope="module")
def dual_solver(tmp_path_factory):
    """A scripted solver speaking *both* process disciplines.

    The session rows compare solver-process disciplines, not solver
    strength, so they always run against this deterministic stand-in: it
    answers ``unsat`` whether given a script path (spawn-per-script) or
    driven incrementally over stdin (session).  The per-query cost is the
    interpreter spawn itself — exactly the overhead sessions amortize."""
    script = tmp_path_factory.mktemp("dual-solver") / "dual.py"
    script.write_text(
        "import sys\n"
        "if len(sys.argv) > 1:\n"
        "    print('unsat')\n"
        "else:\n"
        "    for raw in sys.stdin:\n"
        "        line = raw.strip()\n"
        "        if line.startswith('(check-sat'):\n"
        "            print('unsat', flush=True)\n"
        "        elif line.startswith('(echo'):\n"
        "            print(line.split('\"')[1], flush=True)\n"
        "        elif line.startswith('(exit'):\n"
        "            break\n"
    )
    return (sys.executable, str(script))


@pytest.mark.parametrize("opt", _ROWS, ids=lambda o: o.name)
def test_session_row(benchmark, dual_solver, opt):
    """E9 session rows: warm sessions vs spawn-per-script, same verdicts."""
    row = {"optimization": opt.name}
    canonical = {}

    def leg(session: bool):
        options = VerifyOptions(
            backend="smtlib",
            solver_cmd=dual_solver,
            solver_session=session,
            prover=_PROVER,
        )
        checker = SoundnessChecker(options=options)
        start = time.monotonic()
        report = checker.check_optimization(opt)
        elapsed = time.monotonic() - start
        backend = checker.backend
        stats = dict(
            elapsed_s=elapsed,
            spawns=backend.process_spawns,
            queries=backend.session_queries
            if session
            else backend.runner.spawns,
            fallback=backend.fallback_queries,
        )
        canonical[session] = report.canonical()
        backend.close()
        return stats

    out = {}

    def run():
        out["session"] = leg(True)

    benchmark.pedantic(run, rounds=1, iterations=1)
    perproc = leg(False)
    session = out["session"]
    assert canonical[True] == canonical[False], (
        f"{opt.name}: session and spawn-per-script reports disagree"
    )
    assert session["fallback"] == 0, "a healthy session never degrades"
    row.update(
        session_s=round(session["elapsed_s"], 4),
        perproc_s=round(perproc["elapsed_s"], 4),
        session_spawns=session["spawns"],
        perproc_spawns=perproc["spawns"],
        queries=session["queries"],
    )
    _SESSION[opt.name] = row


def test_yy_session_discipline():
    """Warm sessions strictly beat spawn-per-script on spawns and time."""
    assert _SESSION, "run the session row benchmarks first"
    session_spawns = sum(r["session_spawns"] for r in _SESSION.values())
    perproc_spawns = sum(r["perproc_spawns"] for r in _SESSION.values())
    assert session_spawns < perproc_spawns, (
        f"sessions spawned {session_spawns} processes vs "
        f"{perproc_spawns} per-script — amortization is broken"
    )
    session_total = sum(r["session_s"] for r in _SESSION.values())
    perproc_total = sum(r["perproc_s"] for r in _SESSION.values())
    assert session_total < perproc_total, (
        f"sessions took {session_total:.2f}s vs {perproc_total:.2f}s "
        f"per-script — the warm process is not paying for itself"
    )


def test_yy_portfolio_overhead():
    """The headline assertion: portfolio ≤ 1.1× internal wall time."""
    assert set(_INTERNAL) == set(_PORTFOLIO), "run the row benchmarks first"
    for name, (_, internal_canonical) in _INTERNAL.items():
        assert _PORTFOLIO[name][1] == internal_canonical, (
            f"{name}: portfolio and internal reports disagree"
        )
    internal_total = sum(t for t, _ in _INTERNAL.values())
    portfolio_total = sum(t for t, _ in _PORTFOLIO.values())
    # 10% relative + 1s absolute slack (process noise on tiny rows)
    assert portfolio_total <= internal_total * 1.1 + 1.0, (
        f"portfolio {portfolio_total:.2f}s vs internal {internal_total:.2f}s "
        f"— the race is not free"
    )


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _INTERNAL and _PORTFOLIO
    from _report import emit

    solver = " ".join(_SOLVER["cmd"] or ("-",))
    kind = "real solver" if _SOLVER["real"] else "always-unknown stand-in"
    lines = ["=== E9: prover-backend race (internal vs portfolio) ==="]
    lines.append(f"external leg: {solver} ({kind})")
    lines.append(f"{'optimization':24s} {'internal':>9s} {'portfolio':>10s} {'agree':>6s}")
    for name in sorted(_INTERNAL):
        internal_t, internal_c = _INTERNAL[name]
        portfolio_t, portfolio_c = _PORTFOLIO[name]
        agree = "yes" if internal_c == portfolio_c else "NO"
        lines.append(
            f"{name:24s} {internal_t:8.2f}s {portfolio_t:9.2f}s {agree:>6s}"
        )
    internal_total = sum(t for t, _ in _INTERNAL.values())
    portfolio_total = sum(t for t, _ in _PORTFOLIO.values())
    ratio = portfolio_total / internal_total if internal_total else float("nan")
    lines.append(
        f"total: internal {internal_total:.2f}s, portfolio "
        f"{portfolio_total:.2f}s ({ratio:.2f}x; bound 1.10x + 1s slack)"
    )
    if _SMTLIB:
        lines.append("")
        lines.append("=== smtlib vs internal (conclusive verdicts agree) ===")
        for name, (proved, conclusive, _) in sorted(_SMTLIB.items()):
            lines.append(
                f"{name:24s} {proved}/{conclusive} conclusive obligations "
                f"proved (agrees with internal)"
            )
    else:
        lines.append("smtlib agreement rows skipped: no SMT solver installed")
    if _SESSION:
        lines.append("")
        lines.append(
            "=== session vs spawn-per-script (scripted dual-mode stand-in) ==="
        )
        lines.append(
            f"{'optimization':24s} {'session':>9s} {'perproc':>9s} "
            f"{'spawns':>13s} {'queries':>8s}"
        )
        for name in sorted(_SESSION):
            row = _SESSION[name]
            lines.append(
                f"{name:24s} {row['session_s']:8.2f}s {row['perproc_s']:8.2f}s "
                f"{row['session_spawns']:5d} vs {row['perproc_spawns']:4d} "
                f"{row['queries']:8d}"
            )
        session_total = sum(r["session_s"] for r in _SESSION.values())
        perproc_total = sum(r["perproc_s"] for r in _SESSION.values())
        lines.append(
            f"total: session {session_total:.2f}s "
            f"({sum(r['session_spawns'] for r in _SESSION.values())} spawns), "
            f"per-process {perproc_total:.2f}s "
            f"({sum(r['perproc_spawns'] for r in _SESSION.values())} spawns)"
        )
    emit(
        "E9_backend_race",
        "\n".join(lines),
        rows=[
            dict(
                optimization=name,
                internal_s=round(_INTERNAL[name][0], 4),
                portfolio_s=round(_PORTFOLIO[name][0], 4),
                agree=_INTERNAL[name][1] == _PORTFOLIO[name][1],
                **{
                    k: v
                    for k, v in _SESSION.get(name, {}).items()
                    if k != "optimization"
                },
            )
            for name in sorted(_INTERNAL)
        ],
        config=dict(
            external_leg=solver,
            real_solver=_SOLVER["real"],
            prover_timeout_s=_PROVER.timeout_s,
            rows=sorted(_INTERNAL),
        ),
    )
