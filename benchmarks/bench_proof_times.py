"""E1 — per-optimization proof-discharge times (paper section 5.1).

Paper: "On a modern workstation, the time taken by Simplify to discharge
the optimization-specific obligations for these optimizations ranges from 3
to 104 seconds, with an average of 28 seconds."

This harness regenerates the same table for our prover: one row per shipped
optimization/analysis, the time to discharge all of its obligations, plus
the range/average summary line.  Absolute numbers differ (different prover,
different machine, three decades later); the *shape* should hold: folding
rules are near-instant, forward dataflow patterns cheap, backward patterns
and pointer-dependent proofs the most expensive.

The rows are discharged through a persistent proof cache (cold — the cache
starts empty), and a final pass replays every item against the populated
cache, so the E1 table also reports the warm, content-addressed replay time
per item (docs/VERIFYING.md).
"""

import time

import pytest

from repro.prover import ProverConfig
from repro.verify import SoundnessChecker
from repro.opts import ALL_OPTIMIZATIONS, taintedness_analysis

_RESULTS = {}
_WARM = {}


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("proof-cache")


@pytest.fixture(scope="module")
def cached_checker(cache_dir):
    return SoundnessChecker(config=ProverConfig(timeout_s=120), cache=cache_dir)


@pytest.mark.parametrize("opt", ALL_OPTIMIZATIONS, ids=lambda o: o.name)
def test_proof_time(benchmark, cached_checker, opt):
    def discharge():
        return cached_checker.check_optimization(opt)

    report = benchmark.pedantic(discharge, rounds=1, iterations=1)
    assert report.sound, report.summary()
    _RESULTS[opt.name] = report.elapsed_s


def test_analysis_proof_time(benchmark, cached_checker):
    report = benchmark.pedantic(
        lambda: cached_checker.check_analysis(taintedness_analysis),
        rounds=1,
        iterations=1,
    )
    assert report.sound
    _RESULTS[taintedness_analysis.name] = report.elapsed_s


def test_yy_warm_replay(benchmark, cache_dir):
    """Replays every row against the populated cache (a fresh checker, so
    nothing is in process memory — every verdict comes off disk)."""
    warm = SoundnessChecker(config=ProverConfig(timeout_s=120), cache=cache_dir)

    def replay():
        start = time.monotonic()
        report = warm.check_analysis(taintedness_analysis)
        _WARM[taintedness_analysis.name] = time.monotonic() - start
        assert report.sound
        for opt in ALL_OPTIMIZATIONS:
            start = time.monotonic()
            report = warm.check_optimization(opt)
            _WARM[opt.name] = time.monotonic() - start
            assert report.sound, report.summary()

    benchmark.pedantic(replay, rounds=1, iterations=1)
    assert warm.cache.stats.misses == 0, "warm replay missed the cache"


def test_zz_report(benchmark):
    """Emits the E1 table (runs last; name-ordered after the rows)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RESULTS
    from _report import emit

    lines = ["=== E1: obligation-discharge time per optimization ==="]
    lines.append(f"{'optimization':24s} {'cold':>8s} {'warm':>9s}")
    for name, seconds in sorted(_RESULTS.items(), key=lambda kv: kv[1]):
        warm = _WARM.get(name)
        warm_cell = f"{warm * 1000:7.1f}ms" if warm is not None else "      - "
        lines.append(f"{name:24s} {seconds:8.2f} {warm_cell}")
    times = list(_RESULTS.values())
    lines.append(
        f"range {min(times):.2f}s .. {max(times):.2f}s, "
        f"average {sum(times) / len(times):.2f}s over {len(times)} items"
    )
    if _WARM:
        lines.append(
            f"warm replay total {sum(_WARM.values()):.3f}s "
            f"(vs. {sum(times):.2f}s cold)"
        )
    lines.append("paper (Simplify, 2003 workstation): range 3s .. 104s, average 28s")
    emit("E1_proof_times", "\n".join(lines))
