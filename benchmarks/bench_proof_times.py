"""E1 — per-optimization proof-discharge times (paper section 5.1).

Paper: "On a modern workstation, the time taken by Simplify to discharge
the optimization-specific obligations for these optimizations ranges from 3
to 104 seconds, with an average of 28 seconds."

This harness regenerates the same table for our prover: one row per shipped
optimization/analysis, the time to discharge all of its obligations, plus
the range/average summary line.  Absolute numbers differ (different prover,
different machine, three decades later); the *shape* should hold: folding
rules are near-instant, forward dataflow patterns cheap, backward patterns
and pointer-dependent proofs the most expensive.

The rows are discharged through a persistent proof cache (cold — the cache
starts empty), and a final pass replays every item against the populated
cache, so the E1 table also reports the warm, content-addressed replay time
per item (docs/VERIFYING.md).
"""

import time

import pytest

from repro.prover import ProverConfig
from repro.api import VerifyOptions
from repro.verify import SoundnessChecker
from repro.opts import ALL_OPTIMIZATIONS, taintedness_analysis

_RESULTS = {}
_WARM = {}
_RACE = {}
_KERNEL_RACE = {}

#: Rows raced reference-vs-incremental (mode) and reference-vs-flat
#: (kernel) — the ones with enough search for the comparison to mean
#: anything; folding rules finish in milliseconds.
_RACE_ROWS = [
    "cse",
    "loadElim",
    "deadAssignElim",
    "partialDaeSink",
    "preDuplicate",
    "licmDuplicate",
]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("proof-cache")


@pytest.fixture(scope="module")
def cached_checker(cache_dir):
    return SoundnessChecker(
        config=ProverConfig(timeout_s=120),
        options=VerifyOptions(cache_dir=str(cache_dir)),
    )


@pytest.mark.parametrize("opt", ALL_OPTIMIZATIONS, ids=lambda o: o.name)
def test_proof_time(benchmark, cached_checker, opt):
    def discharge():
        return cached_checker.check_optimization(opt)

    report = benchmark.pedantic(discharge, rounds=1, iterations=1)
    assert report.sound, report.summary()
    _RESULTS[opt.name] = report.elapsed_s


def test_analysis_proof_time(benchmark, cached_checker):
    report = benchmark.pedantic(
        lambda: cached_checker.check_analysis(taintedness_analysis),
        rounds=1,
        iterations=1,
    )
    assert report.sound
    _RESULTS[taintedness_analysis.name] = report.elapsed_s


def test_yy_warm_replay(benchmark, cache_dir):
    """Replays every row against the populated cache (a fresh checker, so
    nothing is in process memory — every verdict comes off disk)."""
    warm = SoundnessChecker(
        config=ProverConfig(timeout_s=120),
        options=VerifyOptions(cache_dir=str(cache_dir)),
    )

    def replay():
        start = time.monotonic()
        report = warm.check_analysis(taintedness_analysis)
        _WARM[taintedness_analysis.name] = time.monotonic() - start
        assert report.sound
        for opt in ALL_OPTIMIZATIONS:
            start = time.monotonic()
            report = warm.check_optimization(opt)
            _WARM[opt.name] = time.monotonic() - start
            assert report.sound, report.summary()

    benchmark.pedantic(replay, rounds=1, iterations=1)
    assert warm.cache.stats.misses == 0, "warm replay missed the cache"


def _mode_fingerprint(report):
    ctxs = tuple(
        (r.obligation, r.proved, tuple(r.context)) for r in report.results
    )
    for dep in report.dependencies:
        ctxs += tuple(
            (r.obligation, r.proved, tuple(r.context)) for r in dep.results
        )
    return report.canonical(), ctxs


@pytest.mark.parametrize("name", _RACE_ROWS)
def test_xx_mode_race(benchmark, name):
    """Reference vs incremental on the same row, no cache: the verdicts
    (status tree + counterexample contexts) must be byte-identical and the
    incremental mode must evaluate strictly fewer ground literals."""
    opt = {o.name: o for o in ALL_OPTIMIZATIONS}[name]
    out = {}

    def race():
        for mode in ("reference", "incremental"):
            checker = SoundnessChecker(
                config=ProverConfig(timeout_s=120, mode=mode)
            )
            start = time.monotonic()
            report = checker.check_optimization(opt)
            elapsed = time.monotonic() - start
            stats = report.prover_stats()
            out[mode] = (_mode_fingerprint(report), stats.lit_evals, elapsed)

    benchmark.pedantic(race, rounds=1, iterations=1)
    ref, inc = out["reference"], out["incremental"]
    assert ref[0] == inc[0], f"{name}: modes returned different reports"
    assert inc[1] < ref[1], (
        f"{name}: incremental evaluated {inc[1]} literals, "
        f"reference {ref[1]} — not strictly fewer"
    )
    _RACE[name] = (ref[1], inc[1], ref[2], inc[2])


@pytest.mark.parametrize("name", _RACE_ROWS)
def test_xx_kernel_race(benchmark, name):
    """Reference vs flat e-graph kernel on the same row, no cache: the
    reports must be byte-identical, the search counters must coincide, and
    the flat kernel must perform strictly fewer Python-level structural
    visits (docs/KERNELS.md)."""
    opt = {o.name: o for o in ALL_OPTIMIZATIONS}[name]
    out = {}

    def race():
        for kernel in ("reference", "flat"):
            checker = SoundnessChecker(
                config=ProverConfig(timeout_s=120, kernel=kernel)
            )
            start = time.monotonic()
            report = checker.check_optimization(opt)
            elapsed = time.monotonic() - start
            stats = report.prover_stats()
            out[kernel] = (
                _mode_fingerprint(report),
                stats.search_fingerprint(),
                stats.struct_visits,
                elapsed,
            )

    benchmark.pedantic(race, rounds=1, iterations=1)
    ref, flat = out["reference"], out["flat"]
    assert ref[0] == flat[0], f"{name}: kernels returned different reports"
    assert ref[1] == flat[1], f"{name}: kernels' search counters diverged"
    assert flat[2] < ref[2], (
        f"{name}: flat visited {flat[2]} structures, reference {ref[2]} — "
        f"not strictly fewer"
    )
    _KERNEL_RACE[name] = (ref[2], flat[2], ref[3], flat[3])


def test_zz_report(benchmark):
    """Emits the E1 table (runs last; name-ordered after the rows)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RESULTS
    from _report import emit

    lines = ["=== E1: obligation-discharge time per optimization ==="]
    lines.append(f"{'optimization':24s} {'cold':>8s} {'warm':>9s}")
    for name, seconds in sorted(_RESULTS.items(), key=lambda kv: kv[1]):
        warm = _WARM.get(name)
        warm_cell = f"{warm * 1000:7.1f}ms" if warm is not None else "      - "
        lines.append(f"{name:24s} {seconds:8.2f} {warm_cell}")
    times = list(_RESULTS.values())
    lines.append(
        f"range {min(times):.2f}s .. {max(times):.2f}s, "
        f"average {sum(times) / len(times):.2f}s over {len(times)} items"
    )
    if _WARM:
        lines.append(
            f"warm replay total {sum(_WARM.values()):.3f}s "
            f"(vs. {sum(times):.2f}s cold)"
        )
    if _RACE:
        lines.append("")
        lines.append("=== reference vs incremental prover (identical verdicts) ===")
        lines.append(
            f"{'optimization':24s} {'ref lit-evals':>13s} {'inc lit-evals':>13s} "
            f"{'ref':>7s} {'inc':>7s}"
        )
        for name, (ref_le, inc_le, ref_s, inc_s) in sorted(_RACE.items()):
            lines.append(
                f"{name:24s} {ref_le:13,d} {inc_le:13,d} "
                f"{ref_s:6.2f}s {inc_s:6.2f}s"
            )
    if _KERNEL_RACE:
        lines.append("")
        lines.append(
            "=== reference vs flat e-graph kernel (identical verdicts and "
            "search counters) ==="
        )
        lines.append(
            f"{'optimization':24s} {'ref visits':>12s} {'flat visits':>12s} "
            f"{'ref':>7s} {'flat':>7s} {'speedup':>8s}"
        )
        for name, (ref_sv, flat_sv, ref_s, flat_s) in sorted(
            _KERNEL_RACE.items()
        ):
            speedup = ref_s / flat_s if flat_s > 0 else float("inf")
            lines.append(
                f"{name:24s} {ref_sv:12,d} {flat_sv:12,d} "
                f"{ref_s:6.2f}s {flat_s:6.2f}s {speedup:7.2f}x"
            )
    lines.append("paper (Simplify, 2003 workstation): range 3s .. 104s, average 28s")

    from repro.prover.kernels import kernel_identity

    rows = {
        "items": [
            {
                "name": name,
                "cold_s": round(seconds, 4),
                "warm_ms": (
                    round(_WARM[name] * 1000, 3) if name in _WARM else None
                ),
            }
            for name, seconds in sorted(_RESULTS.items())
        ],
        "mode_race": [
            {
                "name": name,
                "ref_lit_evals": ref_le,
                "inc_lit_evals": inc_le,
                "ref_s": round(ref_s, 4),
                "inc_s": round(inc_s, 4),
            }
            for name, (ref_le, inc_le, ref_s, inc_s) in sorted(_RACE.items())
        ],
        "kernel_race": [
            {
                "name": name,
                "ref_struct_visits": ref_sv,
                "flat_struct_visits": flat_sv,
                "ref_s": round(ref_s, 4),
                "flat_s": round(flat_s, 4),
            }
            for name, (ref_sv, flat_sv, ref_s, flat_s) in sorted(
                _KERNEL_RACE.items()
            )
        ],
    }
    config = {
        "timeout_s": 120,
        "default_kernel": kernel_identity("flat"),
        "cold_rows_cached": True,
    }
    emit("E1_proof_times", "\n".join(lines), rows=rows, config=config)
