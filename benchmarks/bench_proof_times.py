"""E1 — per-optimization proof-discharge times (paper section 5.1).

Paper: "On a modern workstation, the time taken by Simplify to discharge
the optimization-specific obligations for these optimizations ranges from 3
to 104 seconds, with an average of 28 seconds."

This harness regenerates the same table for our prover: one row per shipped
optimization/analysis, the time to discharge all of its obligations, plus
the range/average summary line.  Absolute numbers differ (different prover,
different machine, three decades later); the *shape* should hold: folding
rules are near-instant, forward dataflow patterns cheap, backward patterns
and pointer-dependent proofs the most expensive.
"""

import pytest

from repro.opts import ALL_OPTIMIZATIONS, taintedness_analysis

_RESULTS = {}


@pytest.mark.parametrize("opt", ALL_OPTIMIZATIONS, ids=lambda o: o.name)
def test_proof_time(benchmark, checker, opt):
    def discharge():
        return checker.check_optimization(opt)

    report = benchmark.pedantic(discharge, rounds=1, iterations=1)
    assert report.sound, report.summary()
    _RESULTS[opt.name] = report.elapsed_s


def test_analysis_proof_time(benchmark, checker):
    report = benchmark.pedantic(
        lambda: checker.check_analysis(taintedness_analysis), rounds=1, iterations=1
    )
    assert report.sound
    _RESULTS[taintedness_analysis.name] = report.elapsed_s


def test_zz_report(benchmark):
    """Emits the E1 table (runs last; name-ordered after the rows)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _RESULTS
    from _report import emit

    lines = ["=== E1: obligation-discharge time per optimization ==="]
    lines.append(f"{'optimization':24s} {'seconds':>8s}")
    for name, seconds in sorted(_RESULTS.items(), key=lambda kv: kv[1]):
        lines.append(f"{name:24s} {seconds:8.2f}")
    times = list(_RESULTS.values())
    lines.append(
        f"range {min(times):.2f}s .. {max(times):.2f}s, "
        f"average {sum(times) / len(times):.2f}s over {len(times)} items"
    )
    lines.append("paper (Simplify, 2003 workstation): range 3s .. 104s, average 28s")
    emit("E1_proof_times", "\n".join(lines))
