"""E4 — the execution engine (paper section 5.2).

The paper implements Cobalt optimizations as a substitution-set dataflow
analysis in Whirlwind and reports executing all of its optimizations.  This
harness measures our implementation of the same algorithm: per-optimization
throughput over generated programs (fixed-point analysis + transformation),
scaling with procedure size, and the recursive/iterated mode (the
"recursive version of dead-assignment elimination" the paper describes).
"""

from dataclasses import replace

import pytest

from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.opts import const_prop, copy_prop, cse, dae

_SUMMARY = []


def _programs(count, **kw):
    config = GeneratorConfig(**kw)
    return [
        ProgramGenerator(config, seed=seed).gen_proc() for seed in range(count)
    ]


@pytest.mark.parametrize("opt", [const_prop, copy_prop, cse, dae], ids=lambda o: o.name)
def test_engine_throughput(benchmark, engine, opt):
    procs = _programs(20, num_stmts=16, num_vars=4)

    def run():
        total = 0
        for proc in procs:
            _, applied = engine.run_optimization(opt, proc)
            total += len(applied)
        return total

    total = benchmark(run)
    stmts = sum(len(p.stmts) for p in procs)
    _SUMMARY.append((opt.name, stmts, total))


@pytest.mark.parametrize("size", [8, 16, 32, 64], ids=lambda s: f"{s}stmts")
def test_engine_scaling(benchmark, engine, size):
    procs = _programs(6, num_stmts=size, num_vars=4)

    def run():
        for proc in procs:
            engine.run_optimization(const_prop, proc)

    benchmark(run)


def test_iterated_dae(benchmark, engine):
    """The recursive mode: iterate DAE to a fixpoint so chains of dead
    assignments (x dead only after its consumer dies) all disappear."""
    from repro.il.parser import parse_program

    proc = parse_program(
        """
        main(n) {
          decl a;
          decl b;
          decl c;
          a := n;
          b := a;
          c := b;
          c := 1;
          return c;
        }
        """
    ).proc("main")
    iterating = replace(dae, iterate=True)

    def run():
        out, applied = engine.run_optimization(iterating, proc)
        return len(applied)

    removed = benchmark(run)
    assert removed == 3  # the whole a -> b -> c chain


def test_composed_fixpoint(benchmark, engine):
    """Composition (section 5.2): a pass set iterated to a global fixpoint
    finds cascading rewrites a fixed ordering would miss."""
    from repro.il.parser import parse_program
    from repro.opts import const_branch
    from repro.opts.algebraic import add_zero_right

    proc = parse_program(
        """
        main(n) {
          decl a;
          decl b;
          decl c;
          a := 2 * 3;
          b := a;
          c := b + 0;
          return c;
        }
        """
    ).proc("main")
    from repro.opts import const_fold

    passes = [const_fold, const_prop, add_zero_right, dae]

    def run():
        out, counts = engine.run_to_fixpoint(passes, proc)
        return counts

    counts = benchmark(run)
    assert counts["constFold"] == 1
    assert counts.get("deadAssignElim", 0) >= 2


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _SUMMARY:
        return
    from _report import emit

    lines = ["=== E4: engine throughput (20 generated procedures each) ==="]
    lines.append(f"{'optimization':16s} {'stmts':>6s} {'transformations':>16s}")
    for name, stmts, total in _SUMMARY:
        lines.append(f"{name:16s} {stmts:6d} {total:16d}")
    emit("E4_engine", "\n".join(lines))
