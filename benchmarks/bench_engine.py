"""E4 — the execution engine (paper section 5.2).

The paper implements Cobalt optimizations as a substitution-set dataflow
analysis in Whirlwind and reports executing all of its optimizations.  This
harness measures our implementation of the same algorithm: per-optimization
throughput over generated programs (fixed-point analysis + transformation),
scaling with procedure size, and the recursive/iterated mode (the
"recursive version of dead-assignment elimination" the paper describes).

The scaling experiment compares the two fixpoint solvers head to head
(see docs/ENGINE.md): the retained naive reference sweep ("before") vs.
the memoized priority worklist ("after"), asserting along the way that
their facts and transformations are identical — the speedup must not buy
a different answer.
"""

import time
from dataclasses import replace

import pytest

from repro.il.generator import GeneratorConfig, ProgramGenerator
from repro.cobalt.engine import CobaltEngine
from repro.cobalt.labels import standard_registry
from repro.opts import const_prop, copy_prop, cse, dae

_SUMMARY = []
_SCALING = []


def _programs(count, **kw):
    config = GeneratorConfig(**kw)
    return [
        ProgramGenerator(config, seed=seed).gen_proc() for seed in range(count)
    ]


@pytest.mark.parametrize("opt", [const_prop, copy_prop, cse, dae], ids=lambda o: o.name)
def test_engine_throughput(benchmark, engine, opt):
    procs = _programs(20, num_stmts=16, num_vars=4)

    def run():
        total = 0
        for proc in procs:
            _, applied = engine.run_optimization(opt, proc)
            total += len(applied)
        return total

    total = benchmark(run)
    stmts = sum(len(p.stmts) for p in procs)
    _SUMMARY.append((opt.name, stmts, total))


def _timed(engine, procs, opts):
    """One full suite pass over ``procs``; returns (seconds, stats delta)."""
    engine.reset_stats()
    outputs = []
    start = time.perf_counter()
    for proc in procs:
        for opt in opts:
            outputs.append(engine.run_optimization(opt, proc))
    elapsed = time.perf_counter() - start
    return elapsed, engine.stats.snapshot(), outputs


@pytest.mark.parametrize(
    "size", [8, 16, 32, 64, 128], ids=lambda s: f"{s}stmts"
)
def test_engine_scaling(benchmark, size):
    """Sweep vs. worklist at growing procedure sizes.

    Both solvers run the same passes over the same programs; results must
    be identical, and from 64 statements up the worklist must strictly
    dominate the sweep (fewer ``keeps`` evaluations *and* lower wall
    time) — the E4 acceptance criterion.
    """
    procs = _programs(4, num_stmts=size, num_vars=4)
    opts = [const_prop, dae]
    reference = CobaltEngine(standard_registry(), mode="reference")
    worklist = CobaltEngine(standard_registry())

    ref_s, ref_stats, ref_out = _timed(reference, procs, opts)
    wl_s, wl_stats, wl_out = _timed(worklist, procs, opts)

    assert wl_out == ref_out, "worklist and reference engines diverge"
    assert wl_stats.keeps_evals < ref_stats.keeps_evals
    if size >= 64:
        assert wl_s < ref_s, (
            f"worklist ({wl_s:.3f}s) must beat the sweep ({ref_s:.3f}s) "
            f"at {size} statements"
        )

    _SCALING.append(
        (
            size,
            ref_s,
            wl_s,
            ref_stats.sweeps,
            wl_stats.worklist_pops,
            ref_stats.keeps_evals,
            wl_stats.keeps_evals,
            wl_stats.keeps_hit_rate,
        )
    )
    benchmark.pedantic(
        lambda: _timed(CobaltEngine(standard_registry()), procs, opts),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("mode", ["reference", "worklist"])
def test_engine_smoke_cross_check(benchmark, mode):
    """The CI smoke tier: one small-size suite pass per solver, asserting
    the worklist reproduces the reference sweep exactly."""
    procs = _programs(3, num_stmts=12, num_vars=4)
    opts = [const_prop, copy_prop, cse, dae]
    engine = CobaltEngine(standard_registry(), mode=mode)
    other = CobaltEngine(
        standard_registry(),
        mode="worklist" if mode == "reference" else "reference",
    )

    def run():
        return [engine.run_optimization(opt, p) for p in procs for opt in opts]

    mine = benchmark(run)
    theirs = [other.run_optimization(opt, p) for p in procs for opt in opts]
    assert mine == theirs


def test_iterated_dae(benchmark, engine):
    """The recursive mode: iterate DAE to a fixpoint so chains of dead
    assignments (x dead only after its consumer dies) all disappear."""
    from repro.il.parser import parse_program

    proc = parse_program(
        """
        main(n) {
          decl a;
          decl b;
          decl c;
          a := n;
          b := a;
          c := b;
          c := 1;
          return c;
        }
        """
    ).proc("main")
    iterating = replace(dae, iterate=True)

    def run():
        out, applied = engine.run_optimization(iterating, proc)
        return len(applied)

    removed = benchmark(run)
    assert removed == 3  # the whole a -> b -> c chain


def test_composed_fixpoint(benchmark, engine):
    """Composition (section 5.2): a pass set iterated to a global fixpoint
    finds cascading rewrites a fixed ordering would miss."""
    from repro.il.parser import parse_program
    from repro.opts import const_branch
    from repro.opts.algebraic import add_zero_right

    proc = parse_program(
        """
        main(n) {
          decl a;
          decl b;
          decl c;
          a := 2 * 3;
          b := a;
          c := b + 0;
          return c;
        }
        """
    ).proc("main")
    from repro.opts import const_fold

    passes = [const_fold, const_prop, add_zero_right, dae]

    def run():
        out, counts = engine.run_to_fixpoint(passes, proc)
        return counts

    counts = benchmark(run)
    assert counts["constFold"] == 1
    assert counts.get("deadAssignElim", 0) >= 2


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _SUMMARY and not _SCALING:
        return
    from _report import emit

    lines = []
    if _SUMMARY:
        lines.append("=== E4: engine throughput (20 generated procedures each) ===")
        lines.append(f"{'optimization':16s} {'stmts':>6s} {'transformations':>16s}")
        for name, stmts, total in _SUMMARY:
            lines.append(f"{name:16s} {stmts:6d} {total:16d}")
    if _SCALING:
        if lines:
            lines.append("")
        lines.append(
            "=== E4: sweep vs. worklist scaling "
            "(constProp+deadAssignElim over 4 procedures) ==="
        )
        lines.append(
            f"{'size':>5s} {'sweep_s':>9s} {'worklist_s':>11s} {'speedup':>8s} "
            f"{'sweeps':>7s} {'pops':>7s} {'sweep_keeps':>12s} "
            f"{'wl_keeps':>9s} {'hit_rate':>9s}"
        )
        for size, ref_s, wl_s, sweeps, pops, ref_keeps, wl_keeps, rate in _SCALING:
            speedup = ref_s / wl_s if wl_s else float("inf")
            lines.append(
                f"{size:5d} {ref_s:9.4f} {wl_s:11.4f} {speedup:7.1f}x "
                f"{sweeps:7d} {pops:7d} {ref_keeps:12d} {wl_keeps:9d} "
                f"{rate:8.1%}"
            )
    emit("E4_engine", "\n".join(lines))
