"""E2 — the optimization suite table (paper sections 1, 2, 6).

Paper: "We have implemented and automatically proven sound a dozen Cobalt
optimizations and analyses" — constant propagation and folding, copy
propagation, CSE (incl. redundant loads), branch folding, (partial)
redundancy elimination, (partial) dead assignment elimination,
loop-invariant code motion, and simple pointer analyses.

This harness verifies the whole suite and prints the table: one row per
item with its direction, obligation verdicts, and proof time.  Every row
must come out SOUND.
"""

import pytest

from repro.opts import ALL_OPTIMIZATIONS, taintedness_analysis

_ROWS = []


def test_suite_soundness(benchmark, checker):
    def run_all():
        rows = []
        report = checker.check_analysis(taintedness_analysis)
        rows.append(("taintedness", "analysis", report))
        for opt in ALL_OPTIMIZATIONS:
            rows.append((opt.name, opt.direction, checker.check_optimization(opt)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _ROWS.extend(rows)
    for name, _, report in rows:
        assert report.sound, f"{name} unexpectedly rejected:\n{report.summary()}"


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS
    from _report import emit

    lines = ["=== E2: the optimization suite, all proven sound ==="]
    lines.append(f"{'name':24s} {'direction':9s} {'obligations':26s} {'time':>7s}")
    for name, direction, report in _ROWS:
        obligations = " ".join(
            f"{r.obligation}:{'ok' if r.proved else 'FAIL'}" for r in report.results
        )
        lines.append(
            f"{name:24s} {direction:9s} {obligations:26s} {report.elapsed_s:6.2f}s"
        )
    lines.append(
        f"{len(_ROWS)} items (paper: 'a dozen optimizations and analyses'), all SOUND"
    )
    emit("E2_suite_soundness", "\n".join(lines))
