"""E2 — the optimization suite table (paper sections 1, 2, 6).

Paper: "We have implemented and automatically proven sound a dozen Cobalt
optimizations and analyses" — constant propagation and folding, copy
propagation, CSE (incl. redundant loads), branch folding, (partial)
redundancy elimination, (partial) dead assignment elimination,
loop-invariant code motion, and simple pointer analyses.

This harness verifies the whole suite and prints the table: one row per
item with its direction, obligation verdicts, and proof time.  Every row
must come out SOUND.
"""

import time

import pytest

from repro.prover import ProverConfig
from repro.api import VerifyOptions
from repro.verify import SoundnessChecker
from repro.opts import ALL_OPTIMIZATIONS, taintedness_analysis

_ROWS = []


def _verify_all(checker):
    """Verify the whole suite in the canonical order; returns the reports."""
    reports = [checker.check_analysis(taintedness_analysis)]
    reports.extend(checker.check_optimization(opt) for opt in ALL_OPTIMIZATIONS)
    return reports


def _canonical_suite(reports):
    return "\n".join(report.canonical() for report in reports)


def test_suite_soundness(benchmark, checker):
    def run_all():
        rows = []
        report = checker.check_analysis(taintedness_analysis)
        rows.append(("taintedness", "analysis", report))
        for opt in ALL_OPTIMIZATIONS:
            rows.append((opt.name, opt.direction, checker.check_optimization(opt)))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _ROWS.extend(rows)
    for name, _, report in rows:
        assert report.sound, f"{name} unexpectedly rejected:\n{report.summary()}"


def test_suite_cold_vs_warm(benchmark, tmp_path_factory):
    """E2b — the persistent proof cache: warm re-verification must be at
    least 5x faster than the cold run, with identical verdicts."""
    cache_dir = tmp_path_factory.mktemp("proof-cache")
    config = ProverConfig(timeout_s=120)

    start = time.monotonic()
    cold_reports = _verify_all(SoundnessChecker(
        config=config, options=VerifyOptions(cache_dir=str(cache_dir))
    ))
    cold_s = time.monotonic() - start

    start = time.monotonic()
    warm_checker = SoundnessChecker(
        config=config, options=VerifyOptions(cache_dir=str(cache_dir))
    )
    warm_reports = _verify_all(warm_checker)
    warm_s = time.monotonic() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert all(r.sound for r in cold_reports)
    assert _canonical_suite(warm_reports) == _canonical_suite(cold_reports)
    assert warm_checker.cache.stats.misses == 0, "warm run missed the cache"
    speedup = cold_s / max(warm_s, 1e-9)
    from _report import emit

    emit(
        "E2b_cache_speedup",
        "=== E2b: persistent proof cache, cold vs. warm suite verification ===\n"
        f"cold (empty cache):  {cold_s:8.2f}s\n"
        f"warm (all hits):     {warm_s:8.2f}s\n"
        f"speedup:             {speedup:8.1f}x (required: >= 5x)\n"
        f"cache entries:       {len(warm_checker.cache):8d}",
    )
    assert speedup >= 5.0, (
        f"warm suite verification only {speedup:.1f}x faster than cold"
    )


def test_suite_parallel_matches_serial(benchmark):
    """E2c — parallel (--jobs 2) verification is a pure speed knob: its
    canonical suite report is byte-identical to the serial one."""
    config = ProverConfig(timeout_s=120)

    start = time.monotonic()
    serial_reports = _verify_all(SoundnessChecker(config=config))
    serial_s = time.monotonic() - start

    start = time.monotonic()
    parallel_reports = _verify_all(SoundnessChecker(
        config=config, options=VerifyOptions(jobs=2)
    ))
    parallel_s = time.monotonic() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    serial_canonical = _canonical_suite(serial_reports)
    parallel_canonical = _canonical_suite(parallel_reports)
    from _report import emit

    emit(
        "E2c_parallel_determinism",
        "=== E2c: parallel vs. serial suite verification ===\n"
        f"serial (1 job):      {serial_s:8.2f}s\n"
        f"parallel (2 jobs):   {parallel_s:8.2f}s\n"
        f"reports byte-identical: "
        f"{'yes' if parallel_canonical == serial_canonical else 'NO'}",
    )
    assert parallel_canonical == serial_canonical


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS
    from _report import emit

    lines = ["=== E2: the optimization suite, all proven sound ==="]
    lines.append(f"{'name':24s} {'direction':9s} {'obligations':26s} {'time':>7s}")
    for name, direction, report in _ROWS:
        obligations = " ".join(
            f"{r.obligation}:{'ok' if r.proved else 'FAIL'}" for r in report.results
        )
        lines.append(
            f"{name:24s} {direction:9s} {obligations:26s} {report.elapsed_s:6.2f}s"
        )
    lines.append(
        f"{len(_ROWS)} items (paper: 'a dozen optimizations and analyses'), all SOUND"
    )
    emit("E2_suite_soundness", "\n".join(lines))
